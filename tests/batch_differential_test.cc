// Differential suite for the batch query engine: SearchBatch over a batch
// of (k, r) queries must be bit-identical — vertices, scores, AND contexts
// — to the per-query TopR loop, for every searcher, at 1, 2, and 8 worker
// threads (extending the PR 1 determinism suite to the batch path). Batches
// are randomized from a seeded generator and include duplicate queries,
// repeated thresholds, and thresholds nothing survives.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/baselines.h"
#include "core/batch_query.h"
#include "core/bound_search.h"
#include "core/dynamic_tsd_index.h"
#include "core/gct_index.h"
#include "core/hybrid_search.h"
#include "core/online_search.h"
#include "core/query_scratch.h"
#include "core/scoring.h"
#include "core/tsd_index.h"
#include "graph/ego_network.h"
#include "graph/generators.h"
#include "truss/ego_truss.h"

namespace tsd {
namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

std::vector<GraphCase> TestGraphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"figure1", PaperFigure1Graph()});
  cases.push_back({"er", ErdosRenyi(80, 500, 3)});
  cases.push_back({"hk", HolmeKim(250, 5, 0.6, 4)});
  cases.push_back({"ba", BarabasiAlbert(200, 4, 5)});
  cases.push_back({"rmat", RMat(8, 6, 0.45, 0.2, 0.2, 6)});
  return cases;
}

/// All seven searchers over one graph, owned together so the index builds
/// happen once per case.
struct SearcherSet {
  explicit SearcherSet(const Graph& g)
      : online(g),
        bound(g),
        tsd(TsdIndex::Build(g)),
        gct(GctIndex::Build(g)),
        hybrid(g, gct),
        comp(g),
        core(g) {}

  std::vector<DiversitySearcher*> All() {
    return {&online, &bound, &tsd, &gct, &hybrid, &comp, &core};
  }

  OnlineSearcher online;
  BoundSearcher bound;
  TsdIndex tsd;
  GctIndex gct;
  HybridSearcher hybrid;
  CompDivSearcher comp;
  CoreDivSearcher core;
};

/// A seeded random batch: k in [2, 6], r skewed small, with duplicates.
std::vector<BatchQuery> RandomBatch(std::uint64_t seed, std::size_t size) {
  Rng rng(seed);
  std::vector<BatchQuery> batch;
  batch.reserve(size);
  const std::uint32_t r_choices[] = {1, 3, 10, 17};
  for (std::size_t i = 0; i < size; ++i) {
    BatchQuery query;
    query.k = 2 + static_cast<std::uint32_t>(rng.Uniform(5));
    query.r = r_choices[rng.Uniform(4)];
    batch.push_back(query);
    if (i + 1 < size && rng.Uniform(4) == 0) {
      batch.push_back(query);  // exact duplicate query
      ++i;
    }
  }
  return batch;
}

void ExpectSameEntries(const TopRResult& expected, const TopRResult& actual,
                       const std::string& label) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << label;
  for (std::size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(expected.entries[i].vertex, actual.entries[i].vertex)
        << label << " rank=" << i;
    EXPECT_EQ(expected.entries[i].score, actual.entries[i].score)
        << label << " rank=" << i;
    EXPECT_EQ(expected.entries[i].contexts, actual.entries[i].contexts)
        << label << " rank=" << i;
  }
}

class BatchDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchDifferentialTest, BatchMatchesPerQuerySearchAtAnyThreadCount) {
  const GraphCase test_case = TestGraphs()[GetParam()];
  SearcherSet searchers(test_case.graph);

  for (DiversitySearcher* searcher : searchers.All()) {
    for (std::uint64_t seed : {11u, 23u}) {
      const std::vector<BatchQuery> batch =
          RandomBatch(seed + GetParam() * 100, /*size=*/5);

      // Sequential per-query ground truth.
      searcher->set_query_options(QueryOptions{});
      std::vector<TopRResult> reference;
      for (const BatchQuery& query : batch) {
        reference.push_back(searcher->TopR(query.r, query.k));
      }

      for (std::uint32_t threads : {1u, 2u, 8u}) {
        QueryOptions options;
        options.num_threads = threads;
        searcher->set_query_options(options);
        const std::vector<TopRResult> results = searcher->SearchBatch(batch);
        ASSERT_EQ(results.size(), batch.size());
        for (std::size_t q = 0; q < batch.size(); ++q) {
          ExpectSameEntries(
              reference[q], results[q],
              test_case.name + " method=" + searcher->name() +
                  " seed=" + std::to_string(seed) +
                  " k=" + std::to_string(batch[q].k) +
                  " r=" + std::to_string(batch[q].r) +
                  " threads=" + std::to_string(threads));
        }
      }
      searcher->set_query_options(QueryOptions{});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, BatchDifferentialTest,
                         ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return TestGraphs()[info.param].name;
                         });

// The dynamic index answers batches with the TSD multi-k slice sweep over
// its maintained forest slices; it must stay bit-identical to per-query
// TopR at any thread count, including after maintenance updates.
TEST(BatchDifferentialTest, DynamicIndexAmortizedBatchPathMatches) {
  const Graph g = HolmeKim(150, 5, 0.5, 7);
  DynamicTsdIndex dynamic(g);
  const std::vector<BatchQuery> batch = {{4, 5}, {2, 10}, {4, 5}, {3, 1}};
  auto check = [&](const std::string& label) {
    std::vector<TopRResult> reference;
    for (const BatchQuery& query : batch) {
      reference.push_back(dynamic.TopR(query.r, query.k));
    }
    for (std::uint32_t threads : {1u, 2u, 8u}) {
      dynamic.set_query_options(QueryOptions{threads, 0});
      const std::vector<TopRResult> results = dynamic.SearchBatch(batch);
      ASSERT_EQ(results.size(), batch.size());
      for (std::size_t q = 0; q < batch.size(); ++q) {
        ExpectSameEntries(reference[q], results[q],
                          label + " q=" + std::to_string(q) +
                              " threads=" + std::to_string(threads));
      }
    }
    dynamic.set_query_options(QueryOptions{});
  };
  check("dynamic");
  dynamic.InsertEdge(0, 149);
  dynamic.RemoveEdge(0, 1);
  check("dynamic-after-updates");
}

// Degenerate batches: empty, single query, every threshold dead (score 0
// everywhere), and r larger than the graph.
TEST(BatchDifferentialTest, DegenerateBatches) {
  const Graph g = PaperFigure1Graph();
  OnlineSearcher online(g);

  EXPECT_TRUE(online.SearchBatch({}).empty());

  const std::vector<BatchQuery> batch = {
      {4, 1}, {9, 3}, {2, 200}, {5, 1}};
  std::vector<TopRResult> reference;
  for (const BatchQuery& query : batch) {
    reference.push_back(
        online.TopR(std::min(query.r, g.num_vertices()), query.k));
  }
  // r is clamped by the collector only through the candidate count, so pass
  // the clamped r to both sides.
  std::vector<BatchQuery> clamped = batch;
  for (BatchQuery& query : clamped) {
    query.r = std::min(query.r, g.num_vertices());
  }
  const std::vector<TopRResult> results = online.SearchBatch(clamped);
  ASSERT_EQ(results.size(), clamped.size());
  for (std::size_t q = 0; q < clamped.size(); ++q) {
    ExpectSameEntries(reference[q], results[q],
                      "degenerate q=" + std::to_string(q));
  }
}

// The multi-threshold sweep must reproduce ScoreFromEgoTrussness exactly,
// vertex by vertex, threshold by threshold.
TEST(MultiKEgoScorerTest, MatchesSingleThresholdScoring) {
  const Graph g = HolmeKim(120, 5, 0.6, 9);
  EgoNetworkExtractor extractor(g);
  EgoTrussDecomposer decomposer(EgoTrussMethod::kHash);
  MultiKEgoScorer scorer;
  const std::vector<std::uint32_t> thresholds = {7, 5, 4, 3, 2};
  std::vector<std::uint32_t> scores(thresholds.size());
  EgoNetwork ego;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    extractor.ExtractInto(v, &ego);
    const std::vector<std::uint32_t> trussness = decomposer.Compute(ego);
    scorer.Compute(ego, trussness, thresholds, scores.data());
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
      EXPECT_EQ(scores[t],
                ScoreFromEgoTrussness(ego, trussness, thresholds[t],
                                      /*want_contexts=*/false)
                    .score)
          << "v=" << v << " k=" << thresholds[t];
    }
  }
}

// The single-pass Hybrid construction must produce bit-identical rankings
// at any thread count (the chunk merge feeds a total-order sort over unique
// vertices), observable through TopR answers for every k and r.
TEST(BatchDifferentialTest, HybridParallelConstructionBitIdentical) {
  const Graph g = HolmeKim(250, 5, 0.6, 12);
  const GctIndex gct = GctIndex::Build(g);
  HybridSearcher sequential(g, gct);
  for (std::uint32_t threads : {2u, 8u}) {
    HybridSearcher parallel(g, gct, threads);
    EXPECT_EQ(parallel.SizeBytes(), sequential.SizeBytes());
    for (std::uint32_t k : {2u, 3u, 4u, 5u, 6u}) {
      for (std::uint32_t r : {1u, 5u, 16u}) {
        ExpectSameEntries(sequential.TopR(r, k), parallel.TopR(r, k),
                          "hybrid construction threads=" +
                              std::to_string(threads) +
                              " k=" + std::to_string(k) +
                              " r=" + std::to_string(r));
      }
    }
  }
}

// Repeated batches over one pipeline must reuse the per-worker scratch:
// after a warm-up batch the workspace's reserved capacity stays flat (the
// steady state performs no new scratch allocation).
TEST(BatchWorkspaceReuseTest, SteadyStateCapacityIsFlat) {
  const Graph g = HolmeKim(200, 5, 0.6, 10);
  QueryPipeline pipeline(g, EgoTrussMethod::kHash, QueryOptions{});
  const std::vector<BatchQuery> queries = {{2, 5}, {3, 5}, {4, 5}, {5, 2}};
  auto run = [&] {
    BatchQueryRunner runner(queries);
    runner.RunEgoScan(pipeline, g.num_vertices());
  };
  run();  // warm-up: scratch grows to its high-water mark
  const std::size_t high_water =
      pipeline.workspace(0).scratch_capacity_bytes();
  EXPECT_GT(high_water, 0u);
  for (int i = 0; i < 5; ++i) run();
  EXPECT_EQ(pipeline.workspace(0).scratch_capacity_bytes(), high_water);
}

// Satellite of the same property at the index layer: repeated TSD / GCT
// score and context queries through one IndexQueryScratch allocate nothing
// new once warm.
TEST(BatchWorkspaceReuseTest, RepeatedIndexQueriesDoNotGrowScratch) {
  const Graph g = HolmeKim(200, 5, 0.6, 11);
  const TsdIndex tsd = TsdIndex::Build(g);
  const GctIndex gct = GctIndex::Build(g);
  IndexQueryScratch scratch;
  auto run_all = [&] {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (std::uint32_t k : {2u, 3u, 4u}) {
        tsd.Score(v, k, scratch);
        tsd.ScoreWithContexts(v, k, scratch);
        gct.ScoreWithContexts(v, k, scratch);
      }
    }
  };
  run_all();  // warm-up
  const std::size_t high_water = scratch.capacity_bytes();
  EXPECT_GT(high_water, 0u);
  for (int i = 0; i < 3; ++i) run_all();
  EXPECT_EQ(scratch.capacity_bytes(), high_water);
}

// The dynamic index's hot path holds the same property: Score and
// ScoreWithContexts through one IndexQueryScratch allocate nothing new
// once warm — including across updates, since rebuilt forest slices stay
// within the same universe and the scratch high-water mark already covers
// the largest per-vertex forest.
TEST(BatchWorkspaceReuseTest, DynamicIndexQueriesDoNotGrowScratch) {
  const Graph g = HolmeKim(200, 5, 0.6, 11);
  DynamicTsdIndex dynamic(g);
  IndexQueryScratch scratch;
  auto run_all = [&] {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (std::uint32_t k : {2u, 3u, 4u}) {
        dynamic.Score(v, k, scratch);
        dynamic.ScoreWithContexts(v, k, scratch);
      }
    }
  };
  run_all();  // warm-up
  const std::size_t high_water = scratch.capacity_bytes();
  EXPECT_GT(high_water, 0u);
  for (int i = 0; i < 3; ++i) run_all();
  EXPECT_EQ(scratch.capacity_bytes(), high_water);

  // Steady state survives live churn: updates rebuild forests but queries
  // still reuse the warmed scratch.
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(g.num_vertices()));
    const VertexId v = static_cast<VertexId>(rng.Uniform(g.num_vertices()));
    if (i % 3 == 0) {
      dynamic.RemoveEdge(u, v);
    } else {
      dynamic.InsertEdge(u, v);
    }
  }
  run_all();
  EXPECT_GE(scratch.capacity_bytes(), high_water);
  const std::size_t churned_high_water = scratch.capacity_bytes();
  for (int i = 0; i < 3; ++i) run_all();
  EXPECT_EQ(scratch.capacity_bytes(), churned_high_water);
}

}  // namespace
}  // namespace tsd
