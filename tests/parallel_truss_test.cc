// Differential suite for the parallel global truss kernels
// (truss/parallel_truss.h): on every test graph and at 1, 2, and 8 worker
// threads, the parallel triangle counts, edge supports, and trussness must
// be bit-identical to the sequential kernels (trussness is unique, so exact
// equality is the specification, not a tolerance). Also carries the
// regression tests for the large-graph hazards fixed alongside: the
// Lemma 2 bound wrap on >2^32 ego edge counts and the 64-bit per-vertex
// triangle counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/bound_search.h"
#include "core/types.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "truss/parallel_truss.h"
#include "truss/peeling.h"
#include "graph/triangle.h"
#include "truss/truss_decomposition.h"

namespace tsd {
namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

// Same five graphs as the query-pipeline determinism suite.
std::vector<GraphCase> TestGraphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"figure1", PaperFigure1Graph()});
  cases.push_back({"er", ErdosRenyi(80, 500, 3)});
  cases.push_back({"hk", HolmeKim(250, 5, 0.6, 4)});
  cases.push_back({"ba", BarabasiAlbert(200, 4, 5)});
  cases.push_back({"rmat", RMat(8, 6, 0.45, 0.2, 0.2, 6)});
  return cases;
}

std::vector<ParallelConfig> ThreadConfigs() {
  // 0 chunks = auto; the 5-chunk case exercises uneven chunk boundaries.
  return {ParallelConfig{1, 0}, ParallelConfig{2, 0}, ParallelConfig{2, 5},
          ParallelConfig{8, 0}};
}

std::vector<std::uint32_t> SequentialTrussness(const Graph& g) {
  CsrView<std::uint64_t> view;
  view.num_vertices = g.num_vertices();
  view.edges = g.edges();
  view.offsets = g.offsets();
  view.adj = g.adjacency();
  view.adj_edge_ids = g.adjacency_edge_ids();
  return PeelSupportToTrussness(view, ComputeSupport(g));
}

class ParallelTrussDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelTrussDifferentialTest, TriangleKernelsBitIdentical) {
  const GraphCase test_case = TestGraphs()[GetParam()];
  const Graph& g = test_case.graph;
  const std::uint64_t triangles = CountTriangles(g);
  const std::vector<std::uint32_t> support = ComputeSupport(g);
  const std::vector<std::uint64_t> per_vertex = TrianglesPerVertex(g);
  for (const ParallelConfig& config : ThreadConfigs()) {
    const std::string label = test_case.name + " threads=" +
                              std::to_string(config.num_threads) + " chunks=" +
                              std::to_string(config.num_chunks);
    EXPECT_EQ(CountTriangles(g, config), triangles) << label;
    EXPECT_EQ(ComputeSupport(g, config), support) << label;
    EXPECT_EQ(TrianglesPerVertex(g, config), per_vertex) << label;
  }
}

TEST_P(ParallelTrussDifferentialTest, ForwardAdjacencyBitIdentical) {
  const GraphCase test_case = TestGraphs()[GetParam()];
  const internal::ForwardAdjacency sequential(test_case.graph);
  for (const ParallelConfig& config : ThreadConfigs()) {
    const internal::ForwardAdjacency parallel(test_case.graph, config);
    EXPECT_EQ(parallel.rank, sequential.rank);
    EXPECT_EQ(parallel.offsets, sequential.offsets);
    EXPECT_EQ(parallel.neighbors, sequential.neighbors);
    EXPECT_EQ(parallel.edge_ids, sequential.edge_ids);
    EXPECT_EQ(parallel.neighbor_ranks, sequential.neighbor_ranks);
  }
}

TEST_P(ParallelTrussDifferentialTest, TrussnessBitIdenticalToPeeling) {
  const GraphCase test_case = TestGraphs()[GetParam()];
  const Graph& g = test_case.graph;
  const std::vector<std::uint32_t> expected = SequentialTrussness(g);
  for (const ParallelConfig& config : ThreadConfigs()) {
    const std::string label =
        test_case.name + " threads=" + std::to_string(config.num_threads);
    EXPECT_EQ(TrussnessFromSupport(g, ComputeSupport(g, config), config),
              expected)
        << label;
    const TrussDecomposition decomposition(g, config);
    EXPECT_EQ(decomposition.edge_trussness(), expected) << label;
  }
}

TEST_P(ParallelTrussDifferentialTest, TrussDecompositionDerivedStateMatches) {
  const GraphCase test_case = TestGraphs()[GetParam()];
  const Graph& g = test_case.graph;
  const TrussDecomposition sequential(g);
  for (const ParallelConfig& config : ThreadConfigs()) {
    const TrussDecomposition parallel(g, config);
    EXPECT_EQ(parallel.max_trussness(), sequential.max_trussness());
    EXPECT_EQ(parallel.TrussnessHistogram(), sequential.TrussnessHistogram());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(parallel.vertex_trussness(v), sequential.vertex_trussness(v))
          << test_case.name << " v=" << v;
    }
  }
}

// The bound search preprocess (global decomposition + m_v counts) now runs
// on the query thread knobs; the ranked answers must not move.
TEST_P(ParallelTrussDifferentialTest, BoundSearcherUnchangedByParallelPreprocess) {
  const GraphCase test_case = TestGraphs()[GetParam()];
  const Graph& g = test_case.graph;
  BoundSearcher sequential(g);
  const TopRResult expected = sequential.TopR(10, 4);
  const std::vector<BatchQuery> batch = {{3, 5}, {4, 10}, {5, 3}};
  const std::vector<TopRResult> expected_batch = sequential.SearchBatch(batch);
  for (const std::uint32_t threads : {2u, 8u}) {
    BoundSearcher searcher(g);
    searcher.set_query_options(QueryOptions{threads, 0});
    const TopRResult result = searcher.TopR(10, 4);
    ASSERT_EQ(result.entries.size(), expected.entries.size());
    for (std::size_t i = 0; i < expected.entries.size(); ++i) {
      EXPECT_EQ(result.entries[i].vertex, expected.entries[i].vertex);
      EXPECT_EQ(result.entries[i].score, expected.entries[i].score);
      EXPECT_EQ(result.entries[i].contexts, expected.entries[i].contexts);
    }
    const std::vector<TopRResult> batch_result = searcher.SearchBatch(batch);
    ASSERT_EQ(batch_result.size(), expected_batch.size());
    for (std::size_t q = 0; q < batch.size(); ++q) {
      ASSERT_EQ(batch_result[q].entries.size(),
                expected_batch[q].entries.size());
      for (std::size_t i = 0; i < expected_batch[q].entries.size(); ++i) {
        EXPECT_EQ(batch_result[q].entries[i].vertex,
                  expected_batch[q].entries[i].vertex);
        EXPECT_EQ(batch_result[q].entries[i].score,
                  expected_batch[q].entries[i].score);
        EXPECT_EQ(batch_result[q].entries[i].contexts,
                  expected_batch[q].entries[i].contexts);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, ParallelTrussDifferentialTest,
                         ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return TestGraphs()[info.param].name;
                         });

// Frontiers below ~512 edges per worker are scattered inline, so the small
// differential graphs above mostly exercise that path. These graphs force
// the threaded scatter: a clique peels as one frontier holding every edge
// (and every triangle has all three edges in it, saturating the
// smallest-frontier-edge tie-break), and the dense ER graph peels thousands
// of edges per level across many levels.
TEST(ParallelTrussLargeFrontierTest, ThreadedScatterBitIdentical) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  const VertexId n = 120;  // m = 7140 >= 8 threads * 512
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  const Graph clique = Graph::FromEdges(std::move(edges), n);
  const Graph dense_er = ErdosRenyi(3000, 60000, 7);
  for (const Graph* g : {&clique, &dense_er}) {
    const std::vector<std::uint32_t> expected = SequentialTrussness(*g);
    for (const std::uint32_t threads : {2u, 8u}) {
      const ParallelConfig config{threads, 0};
      EXPECT_EQ(TrussnessFromSupport(*g, ComputeSupport(*g, config), config),
                expected)
          << "threads=" << threads;
    }
  }
}

// Above the scratch budget the counting kernels switch from per-worker
// arrays to one shared relaxed-atomic array (O(m) memory on huge graphs).
// Budget 0 forces that fallback on the small test graphs; the totals must
// not move.
TEST(ParallelTrussScratchBudgetTest, SharedAtomicFallbackBitIdentical) {
  for (const GraphCase& test_case : TestGraphs()) {
    const Graph& g = test_case.graph;
    const internal::ForwardAdjacency fwd(g);
    const ParallelConfig config{8, 0};
    EXPECT_EQ(internal::SupportFromForward(fwd, g.num_edges(), config,
                                           /*scratch_budget_bytes=*/0),
              ComputeSupport(g))
        << test_case.name;
    EXPECT_EQ(internal::TrianglesPerVertexFromForward(
                  fwd, g.num_vertices(), config, /*scratch_budget_bytes=*/0),
              TrianglesPerVertex(g))
        << test_case.name;
  }
}

// ------------------------------------------------ Overflow regression tests

// A vertex of degree d closes up to C(d, 2) triangles; d ≳ 93k overflows a
// 32-bit counter, which used to wrap silently. The counts are 64-bit
// end-to-end now (compile-time guarantee — the wrap itself would need 2^32
// enumerated triangles, far beyond unit-test budgets), and a dense clique
// checks the closed form through the widened pipeline.
TEST(TrianglesPerVertexOverflowTest, CountsAreSixtyFourBit) {
  static_assert(
      std::is_same_v<decltype(TrianglesPerVertex(std::declval<const Graph&>())),
                     std::vector<std::uint64_t>>,
      "per-vertex triangle counts must be 64-bit");

  std::vector<std::pair<VertexId, VertexId>> edges;
  const VertexId n = 120;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  const Graph clique = Graph::FromEdges(std::move(edges), n);
  const std::uint64_t expected =
      std::uint64_t{n - 1} * (n - 2) / 2;  // C(n-1, 2)
  for (const std::uint64_t count : TrianglesPerVertex(clique)) {
    EXPECT_EQ(count, expected);
  }
  for (const std::uint64_t count :
       TrianglesPerVertex(clique, ParallelConfig{8, 0})) {
    EXPECT_EQ(count, expected);
  }
}

// The Lemma 2 bound used to narrow m_v / (k(k-1)/2) to 32 bits before the
// min, so a synthetic dense ego with m_v = 2^32 wrapped to bound 0 and
// could prune a real answer. 64-bit math keeps the bound exact.
TEST(UpperBoundOverflowTest, DenseEgoEdgeCountDoesNotWrap) {
  const std::uint64_t m_v = std::uint64_t{1} << 32;  // wraps to 0 in 32 bits
  EXPECT_EQ(BoundSearcher::UpperBound(10, m_v, 2), 5u);
  EXPECT_EQ(BoundSearcher::UpperBound(1000, m_v, 4), 250u);
}

}  // namespace
}  // namespace tsd
