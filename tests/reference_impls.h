// Naive reference implementations used to validate the optimized library
// code on small graphs. These follow the paper's definitions literally
// (iterative deletion, brute-force neighborhood intersection) with no
// shared state, no peeling, and no indexes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/disjoint_set.h"
#include "graph/graph.h"

namespace tsd::testing {

/// Brute-force triangle count: checks every vertex triple adjacency.
inline std::uint64_t NaiveTriangleCount(const Graph& g) {
  std::uint64_t count = 0;
  for (const Edge& e : g.edges()) {
    for (VertexId w = 0; w < g.num_vertices(); ++w) {
      if (w == e.u || w == e.v) continue;
      if (g.HasEdge(e.u, w) && g.HasEdge(e.v, w)) ++count;
    }
  }
  return count / 3;
}

/// Brute-force support of every edge.
inline std::vector<std::uint32_t> NaiveSupport(const Graph& g) {
  std::vector<std::uint32_t> support(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    for (VertexId w : g.neighbors(edge.u)) {
      if (w != edge.v && g.HasEdge(edge.v, w)) ++support[e];
    }
  }
  return support;
}

/// Edge trussness by literal iterative deletion: for each k, repeatedly
/// delete edges whose support inside the surviving subgraph is < k-2; an
/// edge's trussness is the largest k at which it survives.
inline std::vector<std::uint32_t> NaiveTrussness(const Graph& g) {
  const EdgeId m = g.num_edges();
  std::vector<std::uint32_t> trussness(m, 2);
  std::vector<char> alive(m, 1);

  auto support_of = [&](EdgeId e) {
    const Edge& edge = g.edge(e);
    std::uint32_t s = 0;
    for (std::size_t i = 0; i < g.neighbors(edge.u).size(); ++i) {
      const VertexId w = g.neighbors(edge.u)[i];
      const EdgeId e_uw = g.incident_edges(edge.u)[i];
      if (w == edge.v || !alive[e_uw]) continue;
      const EdgeId e_vw = g.FindEdge(edge.v, w);
      if (e_vw != kInvalidEdge && alive[e_vw]) ++s;
    }
    return s;
  };

  for (std::uint32_t k = 3; std::count(alive.begin(), alive.end(), 1) > 0;
       ++k) {
    // Delete edges with support < k-2 until the k-truss stabilizes.
    bool changed = true;
    while (changed) {
      changed = false;
      for (EdgeId e = 0; e < m; ++e) {
        if (alive[e] && support_of(e) < k - 2) {
          alive[e] = 0;
          changed = true;
        }
      }
    }
    for (EdgeId e = 0; e < m; ++e) {
      if (alive[e]) trussness[e] = k;
    }
  }
  return trussness;
}

/// Core numbers by literal iterative deletion.
inline std::vector<std::uint32_t> NaiveCoreNumbers(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> core(n, 0);
  std::vector<char> alive(n, 1);
  auto degree_of = [&](VertexId v) {
    std::uint32_t d = 0;
    for (VertexId u : g.neighbors(v)) d += alive[u];
    return d;
  };
  for (std::uint32_t k = 1;; ++k) {
    bool any_alive = false;
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (alive[v] && degree_of(v) < k) {
          alive[v] = 0;
          changed = true;
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v]) {
        core[v] = k;
        any_alive = true;
      }
    }
    if (!any_alive) break;
  }
  return core;
}

/// The ego-network of v as a standalone graph over *global* vertex ids
/// (non-members isolated), for cross-checking extraction.
inline Graph NaiveEgoGraph(const Graph& g, VertexId v) {
  std::set<VertexId> members(g.neighbors(v).begin(), g.neighbors(v).end());
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (const Edge& e : g.edges()) {
    if (members.count(e.u) && members.count(e.v)) {
      edges.emplace_back(e.u, e.v);
    }
  }
  return Graph::FromEdges(std::move(edges), g.num_vertices());
}

/// Literal Definition 2 + 3: the truss-based structural diversity of v and
/// its social contexts, computed with the naive trussness above.
inline std::pair<std::uint32_t, std::vector<std::vector<VertexId>>>
NaiveScore(const Graph& g, VertexId v, std::uint32_t k) {
  const Graph ego = NaiveEgoGraph(g, v);
  const std::vector<std::uint32_t> trussness = NaiveTrussness(ego);

  DisjointSet dsu(ego.num_vertices());
  std::set<VertexId> touched;
  for (EdgeId e = 0; e < ego.num_edges(); ++e) {
    if (trussness[e] >= k) {
      dsu.Union(ego.edge(e).u, ego.edge(e).v);
      touched.insert(ego.edge(e).u);
      touched.insert(ego.edge(e).v);
    }
  }
  std::map<std::uint32_t, std::vector<VertexId>> by_root;
  for (VertexId u : touched) by_root[dsu.Find(u)].push_back(u);
  std::vector<std::vector<VertexId>> contexts;
  for (auto& [root, ctx] : by_root) {
    std::sort(ctx.begin(), ctx.end());
    contexts.push_back(ctx);
  }
  std::sort(contexts.begin(), contexts.end());
  return {static_cast<std::uint32_t>(contexts.size()), contexts};
}

}  // namespace tsd::testing
