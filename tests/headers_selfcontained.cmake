# Headers-include-what-they-use, enforced the cheap honest way: every
# header under src/ must compile standalone (`-fsyntax-only -x c++` with
# only -I src). A header that leans on its includers for <vector> or
# "common/check.h" passes a normal build by luck of include order and
# breaks the first new includer; compiling it alone removes the luck.
# This is the compile-level half of the hygiene pair — lint_layering's
# token scan handles direction (the DAG) and resolution; this script
# handles sufficiency. Runs under any compiler. Tier-1 ctest:
# `ctest -R headers_selfcontained`.
#
# Required -D variables:
#   REPO_ROOT      repository root (contains src/)
#   CXX_COMPILER   the configured CMAKE_CXX_COMPILER
foreach(var REPO_ROOT CXX_COMPILER)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "headers_selfcontained: -D${var}=... is required")
  endif()
endforeach()

file(GLOB_RECURSE headers "${REPO_ROOT}/src/*.h")
list(SORT headers)

set(failures 0)
foreach(header IN LISTS headers)
  file(RELATIVE_PATH rel "${REPO_ROOT}" "${header}")
  execute_process(
    COMMAND "${CXX_COMPILER}" -std=c++20 -fsyntax-only -x c++
            -I "${REPO_ROOT}/src" "${header}"
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT exit_code EQUAL 0)
    message(SEND_ERROR
      "${rel} is not self-contained:\n${out}${err}")
    math(EXPR failures "${failures}+1")
  endif()
endforeach()

list(LENGTH headers header_count)
if(failures GREATER 0)
  message(FATAL_ERROR
    "headers_selfcontained: ${failures}/${header_count} header(s) failed")
endif()
message(STATUS
  "headers_selfcontained: all ${header_count} src/ headers compile standalone")
