// The central correctness property of the library: all five search methods
// (online baseline, bound-pruned, TSD-index, GCT-index, Hybrid) return
// identical top-r rankings and identical social contexts for every (graph,
// k, r) combination, and agree with the literal naive definition.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/baselines.h"
#include "core/bound_search.h"
#include "core/gct_index.h"
#include "core/hybrid_search.h"
#include "core/online_search.h"
#include "core/scoring.h"
#include "core/tsd_index.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "reference_impls.h"

namespace tsd {
namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

std::vector<GraphCase> TestGraphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"figure1", PaperFigure1Graph()});
  cases.push_back({"er_small", ErdosRenyi(60, 300, 5)});
  cases.push_back({"er_dense", ErdosRenyi(40, 400, 6)});
  cases.push_back({"hk_clustered", HolmeKim(150, 6, 0.7, 7)});
  cases.push_back({"hk_sparse", HolmeKim(200, 3, 0.3, 8)});
  cases.push_back({"ba", BarabasiAlbert(150, 4, 9)});
  cases.push_back({"rmat", RMat(8, 6, 0.45, 0.2, 0.2, 10)});
  CollaborationOptions collab;
  collab.num_authors = 300;
  collab.num_groups = 30;
  collab.num_hubs = 3;
  cases.push_back({"collab", Collaboration(collab, 11).graph});
  return cases;
}

// Normalizes contexts for set comparison.
std::set<std::vector<VertexId>> ContextSet(
    const std::vector<SocialContext>& contexts) {
  return {contexts.begin(), contexts.end()};
}

class SearchEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(SearchEquivalenceTest, AllMethodsAgree) {
  const auto [graph_index, k] = GetParam();
  const GraphCase test_case = TestGraphs()[graph_index];
  const Graph& g = test_case.graph;

  OnlineSearcher online(g);
  BoundSearcher bound(g);
  TsdIndex tsd = TsdIndex::Build(g);
  GctIndex gct = GctIndex::Build(g);
  HybridSearcher hybrid(g, gct);

  std::vector<DiversitySearcher*> methods = {&online, &bound, &tsd, &gct,
                                             &hybrid};

  for (std::uint32_t r : {1u, 3u, 10u}) {
    const TopRResult reference = online.TopR(r, k);
    for (DiversitySearcher* method : methods) {
      const TopRResult result = method->TopR(r, k);
      ASSERT_EQ(result.entries.size(), reference.entries.size())
          << test_case.name << " method=" << method->name() << " k=" << k
          << " r=" << r;
      for (std::size_t i = 0; i < result.entries.size(); ++i) {
        EXPECT_EQ(result.entries[i].vertex, reference.entries[i].vertex)
            << test_case.name << " method=" << method->name() << " k=" << k
            << " r=" << r << " rank=" << i;
        EXPECT_EQ(result.entries[i].score, reference.entries[i].score)
            << test_case.name << " method=" << method->name() << " k=" << k
            << " r=" << r << " rank=" << i;
        EXPECT_EQ(ContextSet(result.entries[i].contexts),
                  ContextSet(reference.entries[i].contexts))
            << test_case.name << " method=" << method->name() << " k=" << k
            << " r=" << r << " rank=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndK, SearchEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(2u, 3u, 4u, 5u, 6u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint32_t>>& info) {
      return TestGraphs()[std::get<0>(info.param)].name + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// Per-vertex score equivalence against the literal naive definition, for
// every vertex and several k, on small graphs.
class NaiveScoreTest : public ::testing::TestWithParam<int> {};

TEST_P(NaiveScoreTest, IndexScoresMatchNaiveDefinition) {
  const GraphCase test_case = TestGraphs()[GetParam()];
  const Graph& g = test_case.graph;
  if (g.num_vertices() > 160) GTEST_SKIP() << "naive too slow";

  TsdIndex tsd = TsdIndex::Build(g);
  GctIndex gct = GctIndex::Build(g);
  OnlineSearcher online(g);

  for (std::uint32_t k : {2u, 3u, 4u, 5u}) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto [naive_score, naive_contexts] = testing::NaiveScore(g, v, k);
      EXPECT_EQ(tsd.Score(v, k), naive_score)
          << test_case.name << " TSD v=" << v << " k=" << k;
      EXPECT_EQ(gct.Score(v, k), naive_score)
          << test_case.name << " GCT v=" << v << " k=" << k;
      const ScoreResult online_score = online.ScoreVertex(v, k, true);
      EXPECT_EQ(online_score.score, naive_score)
          << test_case.name << " online v=" << v << " k=" << k;

      // Context sets must match the naive definition exactly.
      const auto naive_set =
          std::set<std::vector<VertexId>>(naive_contexts.begin(),
                                          naive_contexts.end());
      EXPECT_EQ(ContextSet(online_score.contexts), naive_set);
      EXPECT_EQ(ContextSet(tsd.ScoreWithContexts(v, k).contexts), naive_set);
      EXPECT_EQ(ContextSet(gct.ScoreWithContexts(v, k).contexts), naive_set);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, NaiveScoreTest, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return TestGraphs()[info.param].name;
                         });

// The paper's running example, end to end (Example 2 / Example 3).
TEST(PaperExampleTest, Figure1TopSearchAllMethods) {
  Graph g = PaperFigure1Graph();
  OnlineSearcher online(g);

  const TopRResult top = online.TopR(1, 4);
  ASSERT_EQ(top.entries.size(), 1u);
  EXPECT_EQ(top.entries[0].vertex, 0u);  // v
  EXPECT_EQ(top.entries[0].score, 3u);
  const auto contexts = ContextSet(top.entries[0].contexts);
  const std::set<std::vector<VertexId>> expected = {
      {1, 2, 3, 4},             // x1..x4
      {5, 6, 7, 8},             // y1..y4
      {9, 10, 11, 12, 13, 14},  // r1..r6
  };
  EXPECT_EQ(contexts, expected);
}

// Example 3: the bound search on Figure 1 with k=4, r=1 computes the exact
// score of only one vertex (v itself) thanks to the upper bound.
TEST(PaperExampleTest, Figure1BoundSearchSpaceIsOne) {
  Graph g = PaperFigure1Graph();
  BoundSearcher bound(g);
  const TopRResult top = bound.TopR(1, 4);
  ASSERT_EQ(top.entries.size(), 1u);
  EXPECT_EQ(top.entries[0].vertex, 0u);
  EXPECT_EQ(top.entries[0].score, 3u);
  EXPECT_EQ(top.stats.vertices_scored, 1u);
}

// Score values on Figure 1 across all thresholds.
TEST(PaperExampleTest, Figure1ScoreByK) {
  Graph g = PaperFigure1Graph();
  GctIndex gct = GctIndex::Build(g);
  // k=2: ego of v has two components ({x,y} merged via bridges, {r}).
  EXPECT_EQ(gct.Score(0, 2), 2u);
  // k=3: bridges survive (trussness 3), so still two contexts.
  EXPECT_EQ(gct.Score(0, 3), 2u);
  // k=4: H1 splits into H3, H4; plus the octahedron H2 -> three contexts.
  EXPECT_EQ(gct.Score(0, 4), 3u);
  // k=5: nothing survives.
  EXPECT_EQ(gct.Score(0, 5), 0u);
}

// Upper bounds from the paper's Example 3.
TEST(PaperExampleTest, Figure1UpperBounds) {
  Graph g = PaperFigure1Graph();
  TsdIndex tsd = TsdIndex::Build(g);
  // s̃core(v) at k=4: 11 forest edges of weight >= 4, / (k-1) = 3.
  EXPECT_EQ(tsd.ScoreUpperBound(0, 4), 3u);
  EXPECT_GE(tsd.ScoreUpperBound(0, 4), tsd.Score(0, 4));
  // x1's bound is ⌊5/4⌋ = 1 in the Lemma 2 sense; the TSD bound is at least
  // as tight.
  EXPECT_LE(tsd.ScoreUpperBound(1, 4), 1u);
}

}  // namespace
}  // namespace tsd
