// Fixture: clean layering (common has no project includes).
#pragma once
inline int Util() { return 1; }
