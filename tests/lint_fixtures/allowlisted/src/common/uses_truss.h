// Fixture: same violation as bad_downward, excused by allow.txt.
#pragma once
#include "truss/decompose.h"
