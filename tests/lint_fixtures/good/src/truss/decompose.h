// Fixture: truss may include common.
#pragma once
#include "common/util.h"
inline int Decompose() { return Util(); }
