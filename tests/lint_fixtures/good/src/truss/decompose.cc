#include "truss/decompose.h"

#include "common/util.h"
int DecomposeImpl() { return Decompose() + Util(); }
