// Fixture: MUST fail lint — stale include left by a rename.
#pragma once
#include "common/renamed_away.h"
