#pragma once
inline int Thing() { return 2; }
