// Fixture: MUST fail lint — own header is not the first include.
#include "common/util.h"
#include "common/thing.h"
int ThingImpl() { return Thing(); }
