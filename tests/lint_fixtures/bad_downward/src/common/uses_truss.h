// Fixture: MUST fail lint — common reaching down into truss.
#pragma once
#include "truss/decompose.h"
