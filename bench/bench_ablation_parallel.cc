// Ablation (extension beyond the paper): parallel index construction and
// parallel global truss decomposition. Per-vertex index work is
// independent, so TSD/GCT builds scale with cores, and the global
// decomposition (the bound search's preprocess) scales via the
// frontier-parallel peel; results are bit-identical to the sequential
// kernels (verified by tests). Also reports dynamic TSD maintenance
// throughput (the Section 5.3 future-work extension): edge updates
// repaired per second vs. the cost of a full rebuild.
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "core/bound_search.h"
#include "core/dynamic_tsd_index.h"
#include "core/gct_index.h"
#include "core/tsd_index.h"
#include "truss/truss_decomposition.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  bench::PrintHeader("Ablation (extension)",
                     "parallel index build + dynamic maintenance", scale);

  const std::string dataset = flags.GetString("dataset", "gowalla");
  const Graph g = MakeDataset(dataset, scale);
  std::cout << dataset << ": |V|=" << WithThousands(g.num_vertices())
            << " |E|=" << WithThousands(g.num_edges()) << "\n\n";

  TablePrinter table({"threads", "TSD build", "GCT build", "global truss"});
  double tsd_single = 0;
  for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    TsdIndex::Options tsd_options;
    tsd_options.num_threads = threads;
    GctIndex::Options gct_options;
    gct_options.num_threads = threads;
    WallTimer tsd_timer;
    TsdIndex tsd = TsdIndex::Build(g, tsd_options);
    const double tsd_seconds = tsd_timer.Seconds();
    if (threads == 1) tsd_single = tsd_seconds;
    WallTimer gct_timer;
    GctIndex gct = GctIndex::Build(g, gct_options);
    const double gct_seconds = gct_timer.Seconds();
    WallTimer truss_timer;
    TrussDecomposition truss(g, ParallelConfig{threads, 0});
    const double truss_seconds = truss_timer.Seconds();
    table.Row(std::uint64_t{threads}, HumanSeconds(tsd_seconds),
              HumanSeconds(gct_seconds), HumanSeconds(truss_seconds));
  }
  table.Print(std::cout);

  // ScoreOrdered ramp sweep (the QueryOptions ramp knobs): the first
  // parallel round scores threads × base candidates and each later round
  // is growth× larger. Small bases terminate tight-bound searches early;
  // large bases and growth amortize round barriers on long scans. The
  // shipped defaults (base 4, growth 2) were picked from this sweep; the
  // ranking is bit-identical for every setting.
  std::cout << "\nScoreOrdered ramp sweep (bound method, k=4, r=10, "
               "4 threads):\n";
  TablePrinter ramp({"base/thread", "growth", "scored", "query time"});
  BoundSearcher bound(g);
  for (const std::uint32_t base : {1u, 2u, 4u, 8u, 16u}) {
    for (const std::uint32_t growth : {2u, 4u}) {
      QueryOptions options;
      options.num_threads = 4;
      options.ramp_base_per_thread = base;
      options.ramp_growth = growth;
      bound.set_query_options(options);
      WallTimer query_timer;
      const TopRResult result = bound.TopR(10, 4);
      ramp.Row(std::uint64_t{base}, std::uint64_t{growth},
               result.stats.vertices_scored,
               HumanSeconds(query_timer.Seconds()));
    }
  }
  ramp.Print(std::cout);

  // Dynamic maintenance: random insert/delete stream.
  const std::uint32_t updates =
      static_cast<std::uint32_t>(flags.GetInt("updates", 200));
  DynamicTsdIndex dynamic(g);
  Rng rng(7);
  WallTimer update_timer;
  std::uint32_t applied = 0;
  for (std::uint32_t i = 0; i < updates; ++i) {
    const auto u = static_cast<VertexId>(rng.Uniform(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.Uniform(g.num_vertices()));
    if (u == v) continue;
    if (dynamic.graph().HasEdge(u, v)) {
      applied += dynamic.RemoveEdge(u, v) ? 1 : 0;
    } else {
      applied += dynamic.InsertEdge(u, v) ? 1 : 0;
    }
  }
  const double update_seconds = update_timer.Seconds();
  std::cout << "\nDynamic TSD maintenance: " << applied << " updates in "
            << HumanSeconds(update_seconds) << " ("
            << FormatDouble(applied / update_seconds, 0) << "/s, "
            << dynamic.rebuild_count() << " ego rebuilds)\n"
            << "Full rebuild for comparison:  " << HumanSeconds(tsd_single)
            << " — amortized update cost is "
            << FormatDouble(tsd_single / (update_seconds / applied), 0)
            << "x cheaper than rebuilding.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
