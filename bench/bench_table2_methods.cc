// Table 2: running time and search space (number of vertices whose
// structural diversity is computed) of baseline (Algorithm 3), bound
// (Algorithm 4), and TSD (index-based search), with the speedup ratio
// R_t = t_baseline / t_TSD and pruning ratio R_s = S_baseline / S_TSD.
// Paper defaults: k = 3, r = 100.
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/bound_search.h"
#include "core/online_search.h"
#include "core/tsd_index.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 100));
  bench::PrintHeader("Table 2",
                     "baseline vs bound vs TSD: time and search space", scale);
  std::cout << "k=" << k << " r=" << r << "\n\n";

  TablePrinter table({"Network", "t_baseline", "t_bound", "t_TSD", "Rt",
                      "S_baseline", "S_bound", "S_TSD", "Rs"});
  for (const auto& name : bench::BenchDatasets(scale)) {
    const Graph g = MakeDataset(name, scale);
    const std::uint32_t effective_r =
        std::min<std::uint32_t>(r, g.num_vertices());

    OnlineSearcher baseline(g);
    const TopRResult base = baseline.TopR(effective_r, k);

    BoundSearcher bound(g);
    const TopRResult bounded = bound.TopR(effective_r, k);

    TsdIndex index = TsdIndex::Build(g);
    const TopRResult tsd = index.TopR(effective_r, k);

    const double rt = tsd.stats.total_seconds > 0
                          ? base.stats.total_seconds / tsd.stats.total_seconds
                          : 0;
    const double rs =
        tsd.stats.vertices_scored > 0
            ? static_cast<double>(base.stats.vertices_scored) /
                  static_cast<double>(tsd.stats.vertices_scored)
            : 0;
    table.Row(name, HumanSeconds(base.stats.total_seconds),
              HumanSeconds(bounded.stats.total_seconds),
              HumanSeconds(tsd.stats.total_seconds), FormatDouble(rt, 0),
              WithThousands(base.stats.vertices_scored),
              WithThousands(bounded.stats.vertices_scored),
              WithThousands(tsd.stats.vertices_scored), FormatDouble(rs, 1));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): t_TSD << t_bound <= t_baseline; "
               "Rt in the hundreds-to-thousands;\nS_bound and S_TSD orders "
               "of magnitude below S_baseline, S_TSD <= S_bound.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
