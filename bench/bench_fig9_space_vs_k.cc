// Figure 9: search space (number of vertices whose exact structural
// diversity is computed) of baseline, bound, and TSD as k varies in {2..6}.
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/bound_search.h"
#include "core/online_search.h"
#include "core/tsd_index.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 100));
  bench::PrintHeader("Figure 9", "search space vs k", scale);
  std::cout << "r=" << r << "\n";

  for (const auto& name : PlotDatasetNames()) {
    const Graph g = MakeDataset(name, scale);
    const std::uint32_t effective_r =
        std::min<std::uint32_t>(r, g.num_vertices());
    std::cout << "\n--- " << name << " ---\n";

    OnlineSearcher baseline(g);
    BoundSearcher bound(g);
    TsdIndex tsd = TsdIndex::Build(g);

    TablePrinter table({"k", "baseline", "bound", "TSD"});
    for (std::uint32_t k = 2; k <= 6; ++k) {
      table.Row(std::uint64_t{k},
                WithThousands(baseline.TopR(effective_r, k)
                                  .stats.vertices_scored),
                WithThousands(bound.TopR(effective_r, k)
                                  .stats.vertices_scored),
                WithThousands(tsd.TopR(effective_r, k)
                                  .stats.vertices_scored));
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): baseline = |V| for every k; bound "
               "and TSD orders of\nmagnitude smaller, with TSD <= bound "
               "(the s̃core bound is tighter than Lemma 2).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
