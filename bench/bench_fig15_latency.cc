// Figure 15 (Exp-9): activation latency — the average number of cascade
// rounds needed to activate the x-th vertex of each model's top-100 picks.
// The paper's claim: Truss-Div picks activate faster (lower curve) than
// Core-Div's and Comp-Div's.
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/gct_index.h"
#include "influence/contagion_experiments.h"
#include "influence/influence_max.h"

namespace {

using namespace tsd;

std::vector<VertexId> Targets(const TopRResult& result) {
  std::vector<VertexId> out;
  out.reserve(result.entries.size());
  for (const auto& entry : result.entries) out.push_back(entry.vertex);
  return out;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 4));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 100));
  const auto runs = static_cast<std::uint32_t>(flags.GetInt("runs", 2000));
  const auto num_seeds = static_cast<std::uint32_t>(flags.GetInt("seeds", 50));
  // The paper plots p=0.01 cascades; a slightly higher default keeps the
  // small-scale curves populated. Override with --p=0.01 at --scale=large.
  const double p = flags.GetDouble("p", 0.02);
  const QueryOptions query_options = QueryOptionsFromFlags(flags);
  bench::PrintHeader("Figure 15",
                     "activation latency of each model's top-r picks", scale);
  std::cout << "k=" << k << " r=" << r << " seeds=" << num_seeds
            << " p=" << p << " runs=" << runs
            << " threads=" << query_options.num_threads << "\n";

  for (const auto& name : PlotDatasetNames()) {
    const Graph g = MakeDataset(name, scale);
    std::cout << "\n--- " << name << " ---\n";
    const std::uint32_t effective_r =
        std::min<std::uint32_t>(r, g.num_vertices());

    RisOptions ris;
    ris.probability = p;
    ris.num_samples = 20000;
    ris.seed = 42;
    const auto seeds = SelectSeedsRis(g, num_seeds, ris);
    IndependentCascade cascade(g, p);

    GctIndex gct = GctIndex::Build(g);
    CompDivSearcher comp(g);
    CoreDivSearcher core(g);
    gct.set_query_options(query_options);
    comp.set_query_options(query_options);
    core.set_query_options(query_options);

    // Extra 1-thread timing pass for the query-speedup report (skipped in
    // the default sequential run).
    double sequential_seconds = 0;
    if (query_options.num_threads > 1) {
      WallTimer sequential_timer;
      for (DiversitySearcher* searcher :
           std::vector<DiversitySearcher*>{&gct, &comp, &core}) {
        searcher->set_query_options(QueryOptions{});
        searcher->TopR(effective_r, k);
        searcher->set_query_options(query_options);
      }
      sequential_seconds = sequential_timer.Seconds();
    }

    // The timed queries at the requested thread count produce the picks
    // the cascades below consume (rankings are thread-count-invariant).
    WallTimer query_timer;
    const TopRResult truss_top = gct.TopR(effective_r, k);
    const TopRResult core_top = core.TopR(effective_r, k);
    const TopRResult comp_top = comp.TopR(effective_r, k);
    const double query_seconds = query_timer.Seconds();
    if (query_options.num_threads > 1) {
      std::cout << "top-r query speedup at " << query_options.num_threads
                << " threads: "
                << FormatDouble(
                       sequential_seconds / std::max(query_seconds, 1e-9), 2)
                << "x (" << HumanSeconds(sequential_seconds) << " -> "
                << HumanSeconds(query_seconds) << ")\n";
    }

    const auto truss_curve =
        ActivationLatencyCurve(cascade, seeds, Targets(truss_top), runs, 7);
    const auto core_curve =
        ActivationLatencyCurve(cascade, seeds, Targets(core_top), runs, 7);
    const auto comp_curve =
        ActivationLatencyCurve(cascade, seeds, Targets(comp_top), runs, 7);

    auto at = [](const std::vector<double>& curve, std::size_t x) {
      return x < curve.size() ? FormatDouble(curve[x], 2) : std::string("-");
    };
    TablePrinter table({"x-th activated", "Truss-Div rounds",
                        "Core-Div rounds", "Comp-Div rounds"});
    const std::size_t max_len = std::max(
        {truss_curve.size(), core_curve.size(), comp_curve.size()});
    for (std::size_t x = 0; x < max_len; x += std::max<std::size_t>(
             1, max_len / 12)) {
      table.Row(std::uint64_t{x + 1}, at(truss_curve, x), at(core_curve, x),
                at(comp_curve, x));
    }
    std::cout << "reachable picks: Truss-Div=" << truss_curve.size()
              << " Core-Div=" << core_curve.size()
              << " Comp-Div=" << comp_curve.size() << "\n";
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): the Truss-Div curve sits lowest "
               "(fewest rounds) and\nreaches the most activated vertices.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
