// Figure 15 (Exp-9): activation latency — the average number of cascade
// rounds needed to activate the x-th vertex of each model's top-100 picks.
// The paper's claim: Truss-Div picks activate faster (lower curve) than
// Core-Div's and Comp-Div's.
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/gct_index.h"
#include "influence/contagion_experiments.h"
#include "influence/influence_max.h"

namespace {

using namespace tsd;

std::vector<VertexId> Targets(const TopRResult& result) {
  std::vector<VertexId> out;
  out.reserve(result.entries.size());
  for (const auto& entry : result.entries) out.push_back(entry.vertex);
  return out;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 4));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 100));
  const auto runs = static_cast<std::uint32_t>(flags.GetInt("runs", 2000));
  const auto num_seeds = static_cast<std::uint32_t>(flags.GetInt("seeds", 50));
  // The paper plots p=0.01 cascades; a slightly higher default keeps the
  // small-scale curves populated. Override with --p=0.01 at --scale=large.
  const double p = flags.GetDouble("p", 0.02);
  bench::PrintHeader("Figure 15",
                     "activation latency of each model's top-r picks", scale);
  std::cout << "k=" << k << " r=" << r << " seeds=" << num_seeds
            << " p=" << p << " runs=" << runs << "\n";

  for (const auto& name : PlotDatasetNames()) {
    const Graph g = MakeDataset(name, scale);
    std::cout << "\n--- " << name << " ---\n";
    const std::uint32_t effective_r =
        std::min<std::uint32_t>(r, g.num_vertices());

    RisOptions ris;
    ris.probability = p;
    ris.num_samples = 20000;
    ris.seed = 42;
    const auto seeds = SelectSeedsRis(g, num_seeds, ris);
    IndependentCascade cascade(g, p);

    GctIndex gct = GctIndex::Build(g);
    CompDivSearcher comp(g);
    CoreDivSearcher core(g);

    const auto truss_curve = ActivationLatencyCurve(
        cascade, seeds, Targets(gct.TopR(effective_r, k)), runs, 7);
    const auto core_curve = ActivationLatencyCurve(
        cascade, seeds, Targets(core.TopR(effective_r, k)), runs, 7);
    const auto comp_curve = ActivationLatencyCurve(
        cascade, seeds, Targets(comp.TopR(effective_r, k)), runs, 7);

    auto at = [](const std::vector<double>& curve, std::size_t x) {
      return x < curve.size() ? FormatDouble(curve[x], 2) : std::string("-");
    };
    TablePrinter table({"x-th activated", "Truss-Div rounds",
                        "Core-Div rounds", "Comp-Div rounds"});
    const std::size_t max_len = std::max(
        {truss_curve.size(), core_curve.size(), comp_curve.size()});
    for (std::size_t x = 0; x < max_len; x += std::max<std::size_t>(
             1, max_len / 12)) {
      table.Row(std::uint64_t{x + 1}, at(truss_curve, x), at(core_curve, x),
                at(comp_curve, x));
    }
    std::cout << "reachable picks: Truss-Div=" << truss_curve.size()
              << " Core-Div=" << core_curve.size()
              << " Comp-Div=" << comp_curve.size() << "\n";
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): the Truss-Div curve sits lowest "
               "(fewest rounds) and\nreaches the most activated vertices.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
