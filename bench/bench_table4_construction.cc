// Table 4: construction-phase breakdown of TSD vs GCT — ego-network
// extraction time (per-vertex marking vs one-shot global triangle listing)
// and ego-network truss decomposition time (hash vs bitmap kernel).
// This is the ablation for the two Section 6.2 accelerations.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "bench_common.h"
#include "core/gct_index.h"
#include "core/tsd_index.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  // --threads=N parallelizes construction (and the global listing inside
  // GCT), so the Table 4 breakdown is measurable on multi-core hardware.
  const std::uint32_t num_threads = QueryOptionsFromFlags(flags).num_threads;
  bench::PrintHeader(
      "Table 4", "ego-network extraction + decomposition time, TSD vs GCT",
      scale);
  std::cout << "construction threads: " << num_threads << "\n";

  // "Load snap" is the alternative to construction entirely: mmap-loading a
  // previously saved GCT snapshot of the same graph (common/snapshot.h).
  const std::string snap_path =
      (std::filesystem::temp_directory_path() / "tsd_table4.snap").string();
  TsdIndex::Options tsd_options;
  tsd_options.num_threads = num_threads;
  TablePrinter table({"Network", "Extract TSD", "Extract GCT", "Decomp TSD",
                      "Decomp GCT", "Load snap"});
  for (const auto& name : bench::BenchDatasets(scale)) {
    const Graph g = MakeDataset(name, scale);
    TsdIndex tsd = TsdIndex::Build(g, tsd_options);
    GctIndex::Options gct_options;
    gct_options.num_threads = num_threads;
    GctIndex gct = GctIndex::Build(g, gct_options);
    gct.Save(snap_path);
    WallTimer load_timer;
    const GctIndex loaded = GctIndex::Load(snap_path);
    const double load_seconds = load_timer.Seconds();
    table.Row(name, HumanSeconds(tsd.build_stats().extraction_seconds),
              HumanSeconds(gct.build_stats().extraction_seconds),
              HumanSeconds(tsd.build_stats().decomposition_seconds),
              HumanSeconds(gct.build_stats().decomposition_seconds),
              HumanSeconds(load_seconds));
  }
  table.Print(std::cout);
  std::remove(snap_path.c_str());

  // Ablation: GCT with each acceleration disabled, on one mid-size graph.
  const std::string ablation_dataset = "gowalla";
  const Graph g = MakeDataset(ablation_dataset, scale);
  GctIndex::Options base;
  base.num_threads = num_threads;
  GctIndex::Options no_listing = base;
  no_listing.use_global_listing = false;
  GctIndex::Options hash_kernel = base;
  hash_kernel.method = EgoTrussMethod::kHash;
  GctIndex full = GctIndex::Build(g, base);
  GctIndex ablate_listing = GctIndex::Build(g, no_listing);
  GctIndex ablate_bitmap = GctIndex::Build(g, hash_kernel);

  std::cout << "\nAblation on " << ablation_dataset
            << " (total build seconds):\n";
  TablePrinter ablation({"variant", "extract", "decomp", "total"});
  ablation.Row("GCT (listing+bitmap)",
               HumanSeconds(full.build_stats().extraction_seconds),
               HumanSeconds(full.build_stats().decomposition_seconds),
               HumanSeconds(full.build_stats().total_seconds));
  ablation.Row("no global listing",
               HumanSeconds(ablate_listing.build_stats().extraction_seconds),
               HumanSeconds(ablate_listing.build_stats().decomposition_seconds),
               HumanSeconds(ablate_listing.build_stats().total_seconds));
  ablation.Row("hash kernel",
               HumanSeconds(ablate_bitmap.build_stats().extraction_seconds),
               HumanSeconds(ablate_bitmap.build_stats().decomposition_seconds),
               HumanSeconds(ablate_bitmap.build_stats().total_seconds));
  ablation.Print(std::cout);
  std::cout << "\nExpected shape (paper): GCT extraction ≈ 2-10x faster than "
               "TSD's per-vertex\nextraction; bitmap decomposition faster "
               "than hash on triangle-dense graphs.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
