// Figure 12: scalability of TSD-index construction and TSD search on
// synthetic power-law graphs with |E| = 5|V| and growing |V| (the paper
// sweeps 1M..10M vertices with the PythonWeb generator; we sweep a
// scale-appropriate range with Barabási–Albert, the same model family).
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/tsd_index.h"
#include "graph/generators.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 100));
  bench::PrintHeader("Figure 12",
                     "scalability on power-law graphs, |E| = 5|V|", scale);
  std::cout << "k=" << k << " r=" << r << "\n\n";

  std::vector<VertexId> sizes;
  if (scale == "tiny") {
    sizes = {2000, 4000, 6000};
  } else if (scale == "large") {
    sizes = {100000, 200000, 400000, 600000, 800000, 1000000};
  } else {
    sizes = {20000, 40000, 60000, 80000, 100000};
  }

  TablePrinter table({"|V|", "|E|", "index build", "TSD query"});
  for (VertexId n : sizes) {
    const Graph g = BarabasiAlbert(n, 5, /*seed=*/n);
    TsdIndex tsd = TsdIndex::Build(g);
    const double query =
        tsd.TopR(std::min<std::uint32_t>(r, n), k).stats.total_seconds;
    table.Row(WithThousands(n), WithThousands(g.num_edges()),
              HumanSeconds(tsd.build_stats().total_seconds),
              HumanSeconds(query));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): both build and query scale "
               "near-linearly with |V|.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
