// Figure 10: TSD query time as r varies in {50..300} for k in {3, 4, 5}.
// The paper's observation: time mostly decreases with larger k (fewer
// candidates survive the s̃core bound) and grows only slightly with r.
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/tsd_index.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  bench::PrintHeader("Figure 10", "TSD query time varying k and r", scale);

  for (const auto& name : PlotDatasetNames()) {
    const Graph g = MakeDataset(name, scale);
    std::cout << "\n--- " << name << " ---\n";
    TsdIndex tsd = TsdIndex::Build(g);

    TablePrinter table({"r", "k=3", "k=4", "k=5"});
    for (std::uint32_t r = 50; r <= 300; r += 50) {
      const std::uint32_t effective_r =
          std::min<std::uint32_t>(r, g.num_vertices());
      std::vector<std::string> row = {std::to_string(r)};
      for (std::uint32_t k = 3; k <= 5; ++k) {
        row.push_back(
            HumanSeconds(tsd.TopR(effective_r, k).stats.total_seconds));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): time decreases with k and is "
               "nearly flat in r.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
