// Figure 8: running time of all six methods (baseline, bound, TSD, GCT,
// Comp-Div, Core-Div) as the trussness threshold k varies in {2..6}, on the
// paper's three plot datasets (Gowalla, LiveJournal, Orkut). Index build
// time is excluded (the paper plots query time; Table 3 covers builds).
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/bound_search.h"
#include "core/gct_index.h"
#include "core/online_search.h"
#include "core/tsd_index.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 100));
  const bool skip_baseline = flags.GetBool("skip-baseline", false);
  const QueryOptions query_options = QueryOptionsFromFlags(flags);
  bench::PrintHeader("Figure 8", "query time vs k for all methods", scale);
  std::cout << "r=" << r << " threads=" << query_options.num_threads << "\n";

  for (const auto& name : PlotDatasetNames()) {
    const Graph g = MakeDataset(name, scale);
    const std::uint32_t effective_r =
        std::min<std::uint32_t>(r, g.num_vertices());
    std::cout << "\n--- " << name << " (|V|=" << WithThousands(g.num_vertices())
              << ", |E|=" << WithThousands(g.num_edges()) << ") ---\n";

    OnlineSearcher baseline(g);
    BoundSearcher bound(g);
    TsdIndex tsd = TsdIndex::Build(g);
    GctIndex gct = GctIndex::Build(g);
    CompDivSearcher comp(g);
    CoreDivSearcher core(g);
    const std::vector<DiversitySearcher*> searchers = {&baseline, &bound, &tsd,
                                                       &gct,      &comp,  &core};
    for (DiversitySearcher* searcher : searchers) {
      searcher->set_query_options(query_options);
    }

    TablePrinter table({"k", "baseline", "bound", "TSD", "GCT", "Comp-Div",
                        "Core-Div"});
    for (std::uint32_t k = 2; k <= 6; ++k) {
      const std::string baseline_time =
          skip_baseline
              ? "-"
              : HumanSeconds(baseline.TopR(effective_r, k).stats.total_seconds);
      table.Row(
          std::uint64_t{k}, baseline_time,
          HumanSeconds(bound.TopR(effective_r, k).stats.total_seconds),
          HumanSeconds(tsd.TopR(effective_r, k).stats.total_seconds),
          HumanSeconds(gct.TopR(effective_r, k).stats.total_seconds),
          HumanSeconds(comp.TopR(effective_r, k).stats.total_seconds),
          HumanSeconds(core.TopR(effective_r, k).stats.total_seconds));
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): GCT fastest for every k, then TSD; "
               "bound < baseline;\nComp-Div/Core-Div between bound and the "
               "index methods on large graphs.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
