// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every binary runs with no arguments at the "small" scale (seconds per
// binary) and accepts --scale=tiny|small|large (or env TSD_BENCH_SCALE) plus
// experiment-specific flags. Output is the paper's corresponding table or
// figure series rendered as an aligned text table.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/query_pipeline.h"  // QueryOptionsFromFlags: --threads/--chunks
#include "graph/datasets.h"
#include "graph/graph.h"
#include "graph/triangle.h"
#include "truss/truss_decomposition.h"

namespace tsd::bench {

/// Prints the experiment banner: what paper artifact this reproduces and at
/// what scale.
inline void PrintHeader(const std::string& artifact,
                        const std::string& description,
                        const std::string& scale) {
  std::cout << "==================================================\n"
            << artifact << " — " << description << "\n"
            << "scale: " << scale
            << " (synthetic stand-ins for the paper's datasets; see "
               "DESIGN.md §3)\n"
            << "==================================================\n";
}

/// Prints the Table 1 style statistics row block for the given datasets.
inline void PrintNetworkStatistics(const std::vector<std::string>& names,
                                   const std::string& scale) {
  TablePrinter table({"Name", "|V|", "|E|", "d_max", "tau*_G", "T"});
  for (const auto& name : names) {
    const Graph g = MakeDataset(name, scale);
    TrussDecomposition td(g);
    table.Row(name, WithThousands(g.num_vertices()),
              WithThousands(g.num_edges()), std::uint64_t{g.max_degree()},
              std::uint64_t{td.max_trussness()},
              WithThousands(CountTriangles(g)));
  }
  table.Print(std::cout);
}

/// Datasets exercised by default at each scale. The paper's largest graphs
/// are only worth generating at --scale=large.
inline std::vector<std::string> BenchDatasets(const std::string& scale) {
  if (scale == "tiny") {
    return {"wiki-vote", "email-enron"};
  }
  return DatasetNames();  // all eight
}

}  // namespace tsd::bench
