// Table 3: TSD-index vs GCT-index — graph size, index size, index
// construction time, and query time (top-r search at k=3, r=100).
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/gct_index.h"
#include "core/tsd_index.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 100));
  bench::PrintHeader("Table 3",
                     "TSD vs GCT: index size, build time, query time", scale);
  std::cout << "k=" << k << " r=" << r << "\n\n";

  TablePrinter table({"Network", "Graph", "TSD size", "GCT size",
                      "TSD build", "GCT build", "TSD query", "GCT query"});
  for (const auto& name : bench::BenchDatasets(scale)) {
    const Graph g = MakeDataset(name, scale);
    const std::uint32_t effective_r =
        std::min<std::uint32_t>(r, g.num_vertices());

    TsdIndex tsd = TsdIndex::Build(g);
    GctIndex gct = GctIndex::Build(g);
    const double tsd_query = tsd.TopR(effective_r, k).stats.total_seconds;
    const double gct_query = gct.TopR(effective_r, k).stats.total_seconds;

    table.Row(name, HumanBytes(g.MemoryBytes()), HumanBytes(tsd.SizeBytes()),
              HumanBytes(gct.SizeBytes()),
              HumanSeconds(tsd.build_stats().total_seconds),
              HumanSeconds(gct.build_stats().total_seconds),
              HumanSeconds(tsd_query), HumanSeconds(gct_query));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): GCT index smaller than TSD; GCT "
               "builds faster\n(one-shot listing + bitmap peeling) and "
               "queries faster (Lemma 3 counting).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
