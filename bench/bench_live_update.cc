// Live-update serving bench (extension beyond the paper): epoch-versioned
// index maintenance under concurrent query traffic.
//
// The paper's Section 5.3 sketches dynamic maintenance; the serving system
// needs it *online* — updates applied while queries are in flight, with no
// reader locks. This bench quantifies that design on three axes:
//
//   1. Update latency alone (no readers): the per-update cost of rebuilding
//      the |A(u,v)| affected forests plus epoch bookkeeping.
//   2. Update latency under reader pressure: the same stream while N
//      threads hammer the lock-free Score/TopR paths. The delta is the
//      price of concurrency (epoch advances stall while readers are
//      pinned, deferring — never blocking on — reclamation).
//   3. Reader throughput with and without concurrent updates: what query
//      traffic pays for running against a live index instead of a frozen
//      one.
//
// Epoch-reclamation counters (retired/freed/stalled advances) are printed
// so regressions in the reclamation pipeline show up as unbounded limbo
// growth, not just as a latency number.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/dynamic_tsd_index.h"
#include "core/query_scratch.h"
#include "core/query_session.h"
#include "server/live_index.h"

namespace {

using namespace tsd;

struct UpdatePhaseResult {
  double seconds = 0;
  std::uint64_t applied = 0;
  LiveUpdateStats stats;
};

/// Streams `count` randomized updates through an applier (the serving
/// layer's serialized front-end, so the bench measures the shipped path,
/// mutex and histogram included).
UpdatePhaseResult RunUpdates(LiveUpdateApplier& applier, VertexId n,
                             std::uint32_t count, std::uint64_t seed) {
  Rng rng(seed);
  WallTimer timer;
  UpdatePhaseResult result;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto u = static_cast<VertexId>(rng.Uniform(n));
    const auto v = static_cast<VertexId>(rng.Uniform(n));
    // Bias 2:1 toward inserts so density drifts up and rebuilds stay
    // representative of a graph under organic growth.
    if (applier.ApplyUpdate(/*insert=*/rng.Uniform(3) != 0, u, v)) {
      ++result.applied;
    }
  }
  result.seconds = timer.Seconds();
  result.stats = applier.stats();
  return result;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  bench::PrintHeader("Live-update serving (extension)",
                     "epoch-versioned maintenance under query traffic",
                     scale);

  const std::string dataset = flags.GetString("dataset", "gowalla");
  const auto updates =
      static_cast<std::uint32_t>(flags.GetInt("updates", 400));
  const auto readers =
      static_cast<std::uint32_t>(flags.GetInt("readers", 4));
  const Graph g = MakeDataset(dataset, scale);
  const VertexId n = g.num_vertices();
  std::cout << dataset << ": |V|=" << WithThousands(n)
            << " |E|=" << WithThousands(g.num_edges()) << "  updates/phase="
            << updates << "  readers=" << readers << "\n\n";

  TablePrinter table({"phase", "applied", "updates/s", "reader qps"});

  // Phase 1: updates with no readers.
  {
    DynamicTsdIndex index(g);
    LiveUpdateApplier applier(index);
    const UpdatePhaseResult r = RunUpdates(applier, n, updates, 11);
    table.Row("updates only", r.applied,
              FormatDouble(r.applied / r.seconds, 0), "-");
  }

  // Phase 2: the same update stream against `readers` query threads, plus
  // a reader-only control phase on the final graph for the throughput
  // comparison.
  DynamicTsdIndex index(g);
  LiveUpdateApplier applier(index);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t < readers; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(1000 + t);
      IndexQueryScratch scratch;
      QuerySession session;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = static_cast<VertexId>(rng.Uniform(n));
        const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.Uniform(4));
        if (rng.Uniform(16) == 0) {
          index.TopR(10, k, session);
        } else {
          index.Score(v, k, scratch);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Don't start the clock until every reader is demonstrably running.
  while (queries.load(std::memory_order_relaxed) < readers) {
    std::this_thread::yield();
  }
  queries.store(0);
  const UpdatePhaseResult contended = RunUpdates(applier, n, updates, 11);
  const std::uint64_t contended_queries = queries.load();

  // Reader-only control: same threads keep running, updates stop. Floor
  // the window so fast update phases still yield a measurable rate.
  queries.store(0);
  WallTimer control_timer;
  const int control_ms =
      std::max(50, static_cast<int>(contended.seconds * 1000));
  std::this_thread::sleep_for(std::chrono::milliseconds(control_ms));
  const double control_seconds = control_timer.Seconds();
  const std::uint64_t control_queries = queries.load();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : pool) t.join();

  // Latency quantiles come from the applier's histogram; it accumulated
  // both phases, which is fine for a single-run table (phase 1 used its
  // own applier).
  const std::string stats_tables = applier.RenderStatsTables();
  table.Row("updates + readers", contended.applied,
            FormatDouble(contended.applied / contended.seconds, 0),
            FormatDouble(contended_queries / contended.seconds, 0));
  table.Row("readers only", std::uint64_t{0}, "-",
            FormatDouble(control_queries / control_seconds, 0));
  table.Print(std::cout);

  std::cout << "\n" << stats_tables;

  const EpochStats epochs = index.epoch_stats();
  std::cout << "\nReclamation: " << epochs.retired << " retired, "
            << epochs.freed << " freed, " << epochs.stalled_advances
            << " stalled advances (stalls defer frees while readers are "
               "pinned; unbounded retired-minus-freed growth would be a "
               "leak).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
