// Table 5 + Exp-10/11: the DBLP case study, on the synthetic collaboration
// network (overlapping research groups with planted prolific hub authors —
// see DESIGN.md §3).
//
// Section 1 reproduces Exp-10/11: the top-1 author under Truss-Div, Comp-Div
// and Core-Div at k=5, r=1, with the decomposition of each winner's
// ego-network (the paper's point: the truss model decomposes ego-networks
// that the component and core models see as one blob or as few isolated
// contexts).
//
// Section 2 reproduces Table 5: ego-network statistics of each model's
// top-1 answer — |V|, |E|, density, |SC(v)|, and the activation probability
// of the center under IC with p = 0.05 and 10 random neighbor seeds.
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/gct_index.h"
#include "core/online_search.h"
#include "graph/generators.h"
#include "influence/contagion_experiments.h"

namespace {

using namespace tsd;

struct Top1 {
  VertexId vertex;
  std::uint32_t score;
  std::vector<SocialContext> contexts;
};

Top1 TakeTop1(const TopRResult& result) {
  return {result.entries[0].vertex, result.entries[0].score,
          result.entries[0].contexts};
}

void DescribeEgo(const Graph& g, const Top1& top, const std::string& model) {
  EgoNetworkExtractor extractor(g);
  EgoNetwork ego = extractor.Extract(top.vertex);
  const double density =
      ego.num_members() > 0
          ? static_cast<double>(ego.num_edges()) / ego.num_members()
          : 0;
  std::cout << "\n" << model << ": top-1 author = " << top.vertex
            << ", score = " << top.score << "\n"
            << "  ego-network: |V|=" << ego.num_members()
            << " |E|=" << ego.num_edges()
            << " density=" << FormatDouble(density, 2) << "\n";
  std::cout << "  social contexts (sizes):";
  for (const auto& context : top.contexts) {
    std::cout << " " << context.size();
  }
  std::cout << "\n";
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 5));
  const auto runs = static_cast<std::uint32_t>(flags.GetInt("runs", 10000));
  bench::PrintHeader("Table 5 / Exp-10/11",
                     "collaboration-network case study", scale);

  CollaborationOptions options;
  if (scale == "tiny") {
    options.num_authors = 2000;
    options.num_groups = 150;
  } else if (scale == "large") {
    options.num_authors = 234879;  // paper's DBLP size
    options.num_groups = 20000;
  } else {
    options.num_authors = 30000;
    options.num_groups = 2500;
  }
  const CollaborationGraph collab = Collaboration(options, 2026);
  const Graph& g = collab.graph;
  std::cout << "collaboration network: |V|=" << WithThousands(g.num_vertices())
            << " |E|=" << WithThousands(g.num_edges()) << " k=" << k
            << " r=1\n";

  GctIndex gct = GctIndex::Build(g);
  CompDivSearcher comp(g);
  CoreDivSearcher core(g);

  const Top1 truss_top = TakeTop1(gct.TopR(1, k));
  const Top1 comp_top = TakeTop1(comp.TopR(1, k));
  const Top1 core_top = TakeTop1(core.TopR(1, k));

  PrintBanner("Exp-10/11: top-1 ego-network decomposition per model");
  DescribeEgo(g, truss_top, "Truss-Div");
  DescribeEgo(g, comp_top, "Comp-Div");
  DescribeEgo(g, core_top, "Core-Div");

  // How the other models see the Truss-Div winner's ego-network (Exp-10's
  // point: comp = one blob, core = merged contexts).
  OnlineSearcher online(g);
  EgoNetworkExtractor extractor(g);
  EgoNetwork hub_ego = extractor.Extract(truss_top.vertex);
  const ScoreResult comp_on_hub = ScoreComponents(hub_ego, k, true);
  const ScoreResult core_on_hub = ScoreKCores(hub_ego, k - 1, true);
  std::cout << "\nOn the Truss-Div winner's ego-network:\n"
            << "  Comp-Div sees " << comp_on_hub.score
            << " context(s); Core-Div (k-1 core) sees " << core_on_hub.score
            << " context(s); Truss-Div sees " << truss_top.score << ".\n";

  PrintBanner("Table 5: ego-network statistics of top-1 results");
  TablePrinter table({"Method", "Author", "|V|(ego)", "|E|(ego)", "Density",
                      "|SC(v)|", "Activated Prob."});
  struct RowSpec {
    const char* method;
    const Top1* top;
  };
  for (const RowSpec& spec :
       {RowSpec{"Comp-Div", &comp_top}, RowSpec{"Core-Div", &core_top},
        RowSpec{"Truss-Div", &truss_top}}) {
    EgoNetwork ego = extractor.Extract(spec.top->vertex);
    const double density =
        ego.num_members() > 0
            ? static_cast<double>(ego.num_edges()) / ego.num_members()
            : 0;
    const double activated = CenterActivationProbability(
        g, spec.top->vertex, /*num_seeds=*/10, /*probability=*/0.05, runs,
        /*seed=*/5);
    table.Row(spec.method, std::uint64_t{spec.top->vertex},
              std::uint64_t{ego.num_members()}, std::uint64_t{ego.num_edges()},
              FormatDouble(density, 2), std::uint64_t{spec.top->score},
              FormatDouble(activated, 2));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): the Truss-Div winner has the "
               "densest ego-network, several\nbalanced contexts, and the "
               "highest center activation probability.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
