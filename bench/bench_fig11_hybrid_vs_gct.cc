// Figure 11: GCT vs Hybrid query time as r varies from 1 to 300 at k = 3.
// Hybrid stores precomputed per-k rankings but recomputes the winners'
// social contexts online (Algorithm 2); GCT reads contexts straight from
// its index. The paper's observation: comparable at r = 1, GCT wins as r
// grows.
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/gct_index.h"
#include "core/hybrid_search.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  bench::PrintHeader("Figure 11", "Hybrid vs GCT query time varying r", scale);
  std::cout << "k=" << k << "\n";

  for (const auto& name : PlotDatasetNames()) {
    const Graph g = MakeDataset(name, scale);
    std::cout << "\n--- " << name << " ---\n";
    GctIndex gct = GctIndex::Build(g);
    HybridSearcher hybrid(g, gct);

    TablePrinter table({"r", "Hybrid", "GCT"});
    for (std::uint32_t r : {1u, 60u, 120u, 180u, 240u, 300u}) {
      const std::uint32_t effective_r =
          std::min<std::uint32_t>(r, g.num_vertices());
      table.Row(std::uint64_t{r},
                HumanSeconds(hybrid.TopR(effective_r, k).stats.total_seconds),
                HumanSeconds(gct.TopR(effective_r, k).stats.total_seconds));
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): Hybrid ≈ GCT at r=1; Hybrid grows "
               "roughly linearly in r\nwhile GCT stays nearly flat.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
