// google-benchmark micro suite for the substrate kernels and the DESIGN.md
// §6 ablations: triangle listing, global truss peeling, k-core peeling,
// per-vertex vs one-shot ego extraction, hash vs bitmap ego decomposition,
// TSD/GCT score queries, and union-find throughput.
#include <benchmark/benchmark.h>

#include <map>

#include "common/disjoint_set.h"
#include "core/gct_index.h"
#include "core/tsd_index.h"
#include "graph/ego_network.h"
#include "graph/generators.h"
#include "truss/core_decomposition.h"
#include "truss/ego_truss.h"
#include "graph/triangle.h"
#include "truss/truss_decomposition.h"

namespace {

using namespace tsd;

const Graph& TestGraph(int scale_exp) {
  static std::map<int, Graph>* graphs = new std::map<int, Graph>();
  auto it = graphs->find(scale_exp);
  if (it == graphs->end()) {
    const VertexId n = VertexId{1} << scale_exp;
    it = graphs->emplace(scale_exp, HolmeKim(n, 6, 0.5, 7)).first;
  }
  return it->second;
}

void BM_TriangleListing(benchmark::State& state) {
  const Graph& g = TestGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TriangleListing)->Arg(12)->Arg(14);

void BM_TrussDecomposition(benchmark::State& state) {
  const Graph& g = TestGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TrussDecomposition td(g);
    benchmark::DoNotOptimize(td.max_trussness());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TrussDecomposition)->Arg(12)->Arg(14);

void BM_CoreDecomposition(benchmark::State& state) {
  const Graph& g = TestGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CoreDecomposition cd(g);
    benchmark::DoNotOptimize(cd.max_core());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CoreDecomposition)->Arg(12)->Arg(14);

void BM_EgoExtractionPerVertex(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  EgoNetworkExtractor extractor(g);
  EgoNetwork ego;
  for (auto _ : state) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      extractor.ExtractInto(v, &ego);
      benchmark::DoNotOptimize(ego.num_edges());
    }
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_EgoExtractionPerVertex);

void BM_EgoExtractionGlobalOneShot(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  EgoNetwork ego;
  for (auto _ : state) {
    GlobalEgoNetworks global(g);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      global.MaterializeInto(v, &ego);
      benchmark::DoNotOptimize(ego.num_edges());
    }
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_EgoExtractionGlobalOneShot);

void EgoDecompositionLoop(benchmark::State& state, EgoTrussMethod method) {
  const Graph& g = TestGraph(12);
  EgoNetworkExtractor extractor(g);
  EgoTrussDecomposer decomposer(method);
  EgoNetwork ego;
  for (auto _ : state) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      extractor.ExtractInto(v, &ego);
      benchmark::DoNotOptimize(decomposer.Compute(ego));
    }
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}

void BM_EgoTrussHash(benchmark::State& state) {
  EgoDecompositionLoop(state, EgoTrussMethod::kHash);
}
BENCHMARK(BM_EgoTrussHash);

void BM_EgoTrussBitmap(benchmark::State& state) {
  EgoDecompositionLoop(state, EgoTrussMethod::kBitmap);
}
BENCHMARK(BM_EgoTrussBitmap);

void BM_TsdIndexBuild(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  for (auto _ : state) {
    TsdIndex index = TsdIndex::Build(g);
    benchmark::DoNotOptimize(index.SizeBytes());
  }
}
BENCHMARK(BM_TsdIndexBuild);

void BM_GctIndexBuild(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  for (auto _ : state) {
    GctIndex index = GctIndex::Build(g);
    benchmark::DoNotOptimize(index.SizeBytes());
  }
}
BENCHMARK(BM_GctIndexBuild);

void BM_TsdScoreQuery(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  static TsdIndex* index = new TsdIndex(TsdIndex::Build(g));
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Score(v, 4));
    v = (v + 1) % g.num_vertices();
  }
}
BENCHMARK(BM_TsdScoreQuery);

void BM_GctScoreQuery(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  static GctIndex* index = new GctIndex(GctIndex::Build(g));
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Score(v, 4));
    v = (v + 1) % g.num_vertices();
  }
}
BENCHMARK(BM_GctScoreQuery);

void BM_DisjointSetUnionFind(benchmark::State& state) {
  const std::uint32_t n = 1 << 16;
  for (auto _ : state) {
    DisjointSet dsu(n);
    for (std::uint32_t i = 0; i + 1 < n; i += 2) dsu.Union(i, i + 1);
    for (std::uint32_t i = 0; i + 3 < n; i += 4) dsu.Union(i, i + 2);
    benchmark::DoNotOptimize(dsu.NumSets());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DisjointSetUnionFind);

}  // namespace

BENCHMARK_MAIN();
