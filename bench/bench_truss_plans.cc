// TrussPlan comparison: per-plan preprocess (decomposition) time for the
// full exact decomposition, then the thresholded CoreThenTruss prefilter
// against the Bsp baseline. Every plan's full decomposition is verified
// bit-identical to Bsp's before its row prints, and the thresholded run is
// verified exact on every edge at or above the floor, so the table can be
// read as a pure performance comparison.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "truss/truss_plan.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  bench::PrintHeader("TrussPlan kernels",
                     "pluggable peels + core-based prefiltering", scale);

  const std::string dataset = flags.GetString("dataset", "gowalla");
  const Graph g = MakeDataset(dataset, scale);
  std::cout << dataset << ": |V|=" << WithThousands(g.num_vertices())
            << " |E|=" << WithThousands(g.num_edges()) << "\n\n";

  const GraphStatistics gs = ComputeGraphStatistics(g);
  std::cout << "tuner stats: avg_deg=" << FormatDouble(gs.average_degree, 2)
            << " skew=" << FormatDouble(gs.degree_skew, 2)
            << " degen<=" << gs.degeneracy_bound << "\n\n";

  // Full exact decomposition (min_trussness = 2) under every plan. At this
  // floor CoreThenTruss prunes nothing (every edge endpoint has core ≥ 1),
  // so its row measures the prefilter's pure overhead.
  const std::uint32_t threads =
      static_cast<std::uint32_t>(flags.GetInt("threads", 4));
  std::cout << "Full decomposition (" << threads << " threads):\n";
  TablePrinter full({"plan", "resolved", "kernel", "time"});
  const ParallelConfig config{threads, 0};
  std::vector<std::uint32_t> reference;
  for (const TrussPlanAlgorithm algorithm :
       {TrussPlanAlgorithm::kBsp, TrussPlanAlgorithm::kBspJacobi,
        TrussPlanAlgorithm::kCoreThenTruss, TrussPlanAlgorithm::kAuto}) {
    TrussPlanStats stats;
    WallTimer timer;
    const std::vector<std::uint32_t> trussness =
        TrussnessWithPlan(g, TrussPlan::FromAlgorithm(algorithm), config,
                          &stats);
    const double seconds = timer.Seconds();
    if (reference.empty()) {
      reference = trussness;
    } else if (trussness != reference) {
      std::cerr << "FATAL: plan " << TrussPlanAlgorithmName(algorithm)
                << " diverged from bsp\n";
      return 1;
    }
    full.Row(TrussPlanAlgorithmName(algorithm),
             TrussPlanAlgorithmName(stats.algorithm),
             stats.bitmap_kernel ? "bitmap" : "merge", HumanSeconds(seconds));
  }
  full.Print(std::cout);

  // Thresholded preprocess at 1 thread (the acceptance comparison): a
  // caller that only consumes the k-truss — the bound searcher sparsifying
  // to the (k+1)-truss — passes min_trussness = k, and the core prefilter
  // drops every edge whose Burkhardt bound proves it irrelevant before any
  // triangle counting happens.
  const std::uint32_t floor_k =
      static_cast<std::uint32_t>(flags.GetInt("min-trussness", 10));
  std::cout << "\nThresholded preprocess (min_trussness=" << floor_k
            << ", 1 thread):\n";
  const ParallelConfig single{1, 0};

  WallTimer bsp_timer;
  const std::vector<std::uint32_t> bsp_trussness =
      TrussnessWithPlan(g, TrussPlan::Bsp(), single);
  const double bsp_seconds = bsp_timer.Seconds();

  TrussPlanStats core_stats;
  WallTimer core_timer;
  const std::vector<std::uint32_t> core_trussness = TrussnessWithPlan(
      g, TrussPlan::CoreThenTruss(floor_k), single, &core_stats);
  const double core_seconds = core_timer.Seconds();

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (bsp_trussness[e] >= floor_k &&
        core_trussness[e] != bsp_trussness[e]) {
      std::cerr << "FATAL: core-truss diverged from bsp at edge " << e
                << " (trussness " << bsp_trussness[e] << " above the floor)\n";
      return 1;
    }
  }

  TablePrinter thresholded({"plan", "edges pruned", "pruned %", "time"});
  thresholded.Row("bsp", std::uint64_t{0}, FormatDouble(0.0, 1),
                  HumanSeconds(bsp_seconds));
  thresholded.Row(
      "core-truss", core_stats.edges_pruned,
      FormatDouble(100.0 * static_cast<double>(core_stats.edges_pruned) /
                       static_cast<double>(g.num_edges()),
                   1),
      HumanSeconds(core_seconds));
  thresholded.Print(std::cout);
  std::cout << "core-truss is "
            << FormatDouble(bsp_seconds / core_seconds, 2)
            << "x the bsp baseline's speed at this floor.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
