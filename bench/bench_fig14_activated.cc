// Figure 14 (Exp-8): number of activated vertices among the top-r picks of
// Random, Comp-Div, Core-Div, and Truss-Div, varying r in {50..100} at
// k = 4. The paper's claim: the truss model's picks are activated the most.
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/gct_index.h"
#include "influence/contagion_experiments.h"
#include "influence/influence_max.h"

namespace {

using namespace tsd;

std::vector<VertexId> Targets(const TopRResult& result) {
  std::vector<VertexId> out;
  out.reserve(result.entries.size());
  for (const auto& entry : result.entries) out.push_back(entry.vertex);
  return out;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 4));
  const auto runs = static_cast<std::uint32_t>(flags.GetInt("runs", 2000));
  const auto num_seeds = static_cast<std::uint32_t>(flags.GetInt("seeds", 50));
  const double p = flags.GetDouble("p", 0.01);
  bench::PrintHeader(
      "Figure 14", "activated vertices among top-r picks of each model",
      scale);
  std::cout << "k=" << k << " seeds=" << num_seeds << " p=" << p
            << " runs=" << runs << "\n";

  for (const auto& name : PlotDatasetNames()) {
    const Graph g = MakeDataset(name, scale);
    std::cout << "\n--- " << name << " ---\n";

    RisOptions ris;
    ris.probability = p;
    ris.num_samples = 20000;
    ris.seed = 42;
    const auto seeds = SelectSeedsRis(g, num_seeds, ris);
    IndependentCascade cascade(g, p);

    GctIndex gct = GctIndex::Build(g);
    CompDivSearcher comp(g);
    CoreDivSearcher core(g);

    TablePrinter table({"r", "Truss-Div", "Core-Div", "Comp-Div", "Random"});
    for (std::uint32_t r = 50; r <= 100; r += 10) {
      const std::uint32_t effective_r =
          std::min<std::uint32_t>(r, g.num_vertices());
      const auto truss_targets = Targets(gct.TopR(effective_r, k));
      const auto core_targets = Targets(core.TopR(effective_r, k));
      const auto comp_targets = Targets(comp.TopR(effective_r, k));
      const auto random_targets = RandomSelect(g, effective_r, 99);
      table.Row(
          std::uint64_t{r},
          FormatDouble(
              ExpectedActivatedTargets(cascade, seeds, truss_targets, runs, 7),
              1),
          FormatDouble(
              ExpectedActivatedTargets(cascade, seeds, core_targets, runs, 7),
              1),
          FormatDouble(
              ExpectedActivatedTargets(cascade, seeds, comp_targets, runs, 7),
              1),
          FormatDouble(ExpectedActivatedTargets(cascade, seeds, random_targets,
                                                runs, 7),
                       1));
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): Truss-Div >= Core-Div, Comp-Div >> "
               "Random for every r.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
