// Snapshot cold-start: index construction vs snapshot save vs zero-copy
// mmap load, plus the first-query latency from a freshly mapped index.
//
// This is the benchmark behind the snapshot subsystem's reason to exist: a
// serving process should pay page-table setup + validation (milliseconds),
// not a full truss decomposition of the graph (seconds), to get a queryable
// index. The run also asserts that the loaded index answers TopR
// identically to the index it was saved from — speed that changed the
// answers would not be speed.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/snapshot.h"
#include "core/gct_index.h"
#include "core/tsd_index.h"
#include "graph/generators.h"

namespace {

using namespace tsd;

bool SameEntries(const TopRResult& a, const TopRResult& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].vertex != b.entries[i].vertex ||
        a.entries[i].score != b.entries[i].score ||
        a.entries[i].contexts != b.entries[i].contexts) {
      return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  // The acceptance target is a 100k-vertex graph; tiny/large scale it.
  const auto default_n =
      scale == "tiny" ? 10'000 : scale == "large" ? 400'000 : 100'000;
  const auto n = static_cast<VertexId>(flags.GetInt("n", default_n));
  const auto m_per = static_cast<std::uint32_t>(flags.GetInt("m-per", 8));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 4));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 10));
  const std::uint32_t num_threads = QueryOptionsFromFlags(flags).num_threads;

  bench::PrintHeader("Snapshot", "build vs save vs mmap load, cold query",
                     scale);
  Graph g = HolmeKim(n, m_per, 0.5, seed);
  std::cout << "graph: " << WithThousands(g.num_vertices()) << " vertices, "
            << WithThousands(g.num_edges()) << " edges, build threads "
            << num_threads << ", query k=" << k << " r=" << r << "\n";

  const std::string path =
      (std::filesystem::temp_directory_path() / "tsd_bench_snapshot.snap")
          .string();

  TablePrinter table({"index", "build", "save", "mmap load", "speedup",
                      "first query", "identical"});
  double worst_speedup = -1;
  for (const std::string kind : {"tsd", "gct"}) {
    double build_seconds = 0;
    double save_seconds = 0;
    double load_seconds = 0;
    double query_seconds = 0;
    bool identical = false;
    if (kind == "tsd") {
      WallTimer build_timer;
      TsdIndex::Options options;
      options.num_threads = num_threads;
      TsdIndex built = TsdIndex::Build(g, options);
      build_seconds = build_timer.Seconds();

      WallTimer save_timer;
      built.Save(path);
      save_seconds = save_timer.Seconds();

      WallTimer load_timer;
      TsdIndex loaded = TsdIndex::Load(path);
      load_seconds = load_timer.Seconds();

      WallTimer query_timer;
      const TopRResult cold = loaded.TopR(r, k);
      query_seconds = query_timer.Seconds();
      identical = SameEntries(cold, built.TopR(r, k));
    } else {
      WallTimer build_timer;
      GctIndex::Options options;
      options.num_threads = num_threads;
      GctIndex built = GctIndex::Build(g, options);
      build_seconds = build_timer.Seconds();

      WallTimer save_timer;
      built.Save(path);
      save_seconds = save_timer.Seconds();

      WallTimer load_timer;
      GctIndex loaded = GctIndex::Load(path);
      load_seconds = load_timer.Seconds();

      WallTimer query_timer;
      const TopRResult cold = loaded.TopR(r, k);
      query_seconds = query_timer.Seconds();
      identical = SameEntries(cold, built.TopR(r, k));
    }
    const double speedup = build_seconds / load_seconds;
    if (worst_speedup < 0 || speedup < worst_speedup) {
      worst_speedup = speedup;
    }
    table.Row(kind, HumanSeconds(build_seconds), HumanSeconds(save_seconds),
              HumanSeconds(load_seconds),
              FormatDouble(speedup, 1) + "x",
              HumanSeconds(query_seconds), identical ? "yes" : "NO");
  }
  table.Print(std::cout);
  std::remove(path.c_str());

  std::cout << "\nmmap load = open + map + validate header/table/checksums + "
               "bind spans;\nno per-element parsing. Target: load >= 50x "
               "faster than rebuild -> "
            << (worst_speedup >= 50 ? "MET" : "NOT MET") << " ("
            << FormatDouble(worst_speedup, 1) << "x)\n";
  return worst_speedup >= 50 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
