// Batch vs single-query amortization: the fig8/fig15 workload re-runs the
// full per-vertex scan once per k even though one ego decomposition
// determines a vertex's score at every k. This benchmark runs the same
// (k, r) workload twice per method — as a loop of TopR calls and as one
// SearchBatch — verifies the answers are bit-identical, and reports the
// wall-time speedup plus the scan sizes: for the ego-decomposition methods
// the single-query loop performs one decomposition per (vertex, k) while
// the batch path performs one per vertex.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/bound_search.h"
#include "core/gct_index.h"
#include "core/hybrid_search.h"
#include "core/online_search.h"
#include "core/tsd_index.h"

namespace {

using namespace tsd;

bool SameEntries(const TopRResult& a, const TopRResult& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].vertex != b.entries[i].vertex ||
        a.entries[i].score != b.entries[i].score ||
        a.entries[i].contexts != b.entries[i].contexts) {
      return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 25));
  const QueryOptions query_options = QueryOptionsFromFlags(flags);
  bench::PrintHeader("Batch amortization",
                     "one decomposition pass vs one pass per k", scale);

  std::vector<BatchQuery> queries;
  for (std::uint32_t k = 2; k <= 6; ++k) queries.push_back({k, r});
  std::cout << "workload: k=2..6, r=" << r
            << ", threads=" << query_options.num_threads << "\n";

  for (const auto& name : PlotDatasetNames()) {
    const Graph g = MakeDataset(name, scale);
    std::vector<BatchQuery> workload = queries;
    for (BatchQuery& query : workload) {
      query.r = std::min<std::uint32_t>(query.r, g.num_vertices());
    }
    std::cout << "\n--- " << name << " (|V|="
              << WithThousands(g.num_vertices())
              << ", |E|=" << WithThousands(g.num_edges()) << ") ---\n";

    OnlineSearcher online(g);
    BoundSearcher bound(g);
    TsdIndex tsd = TsdIndex::Build(g);
    GctIndex gct = GctIndex::Build(g);
    HybridSearcher hybrid(g, gct, query_options.num_threads);
    const std::vector<DiversitySearcher*> searchers = {&online, &bound, &tsd,
                                                       &gct, &hybrid};

    TablePrinter table({"method", "single", "batch", "speedup",
                        "scanned single", "scanned batch", "identical"});
    for (DiversitySearcher* searcher : searchers) {
      searcher->set_query_options(query_options);

      WallTimer single_timer;
      std::vector<TopRResult> single;
      std::uint64_t single_scanned = 0;
      for (const BatchQuery& query : workload) {
        single.push_back(searcher->TopR(query.r, query.k));
        single_scanned += single.back().stats.vertices_scored;
      }
      const double single_seconds = single_timer.Seconds();

      WallTimer batch_timer;
      const std::vector<TopRResult> batch = searcher->SearchBatch(workload);
      const double batch_seconds = batch_timer.Seconds();

      bool identical = batch.size() == single.size();
      for (std::size_t q = 0; identical && q < batch.size(); ++q) {
        identical = SameEntries(single[q], batch[q]);
      }

      table.Row(searcher->name(), HumanSeconds(single_seconds),
                HumanSeconds(batch_seconds),
                FormatDouble(single_seconds / std::max(batch_seconds, 1e-9),
                             2) +
                    "x",
                WithThousands(single_scanned),
                WithThousands(batch[0].stats.vertices_scored),
                identical ? "yes" : "NO");
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape: the ego-decomposition methods (baseline, "
               "bound) amortize one\ndecomposition per vertex across all "
               "five k (scanned batch ≈ scanned single / 5\nfor baseline); "
               "the index methods amortize the per-k scan and the winners' "
               "context\nphase. 'identical' must read yes everywhere.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
