// Serving-layer throughput: queries/sec through the (sharded) serve loop as
// client threads and shard counts grow, plus per-shard coalescing
// batch-size distributions and a microbench of the admission-path tenant
// depth table.
//
// Each client thread submits a seeded stream of (k, r) requests through its
// tenant's shard queue and blocks on its futures; every shard's consumer
// thread coalesces whatever is in flight into SearchBatch calls over one
// shared immutable GCT index. Under concurrent load the in-flight window
// grows, batches form, and the per-request cost drops (the batch engine
// amortizes the per-vertex slice sweep across tenants). Sharding adds
// inter-batch parallelism on top: S consumers dispatch S batches
// concurrently, at the price of splitting the coalescing pool S ways — the
// per-shard distribution lines make that trade visible. Every reply is
// spot-checked against serial TopR.
//
// The socket sections then measure the full network path through the epoll
// SocketServer (frame encode/decode, event loop, eventfd wakeups) two ways:
//   closed loop  — C clients each keep a bounded pipeline window full;
//                  throughput is demand-driven and latency is send->reply.
//   open loop    — requests arrive on a Poisson process at an *offered*
//                  rate regardless of how the server is doing; latency is
//                  measured from the scheduled arrival time, so queueing
//                  delay shows up once the server saturates (the classic
//                  closed-vs-open distinction: closed loops hide
//                  coordinated omission, open loops expose it).
// Both report p50/p99/p999 from the deterministic-merge LatencyHistogram.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/gct_index.h"
#include "core/query_session.h"
#include "server/sharded_serve.h"
#include "server/socket_proto.h"
#include "server/socket_serve.h"
#include "server/tenant_table.h"

namespace {

using namespace tsd;

bool SameEntries(const TopRResult& a, const TopRResult& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].vertex != b.entries[i].vertex ||
        a.entries[i].score != b.entries[i].score ||
        a.entries[i].contexts != b.entries[i].contexts) {
      return false;
    }
  }
  return true;
}

/// The request mix every client cycles through (deterministic, so each
/// reply can be checked against a precomputed serial reference).
std::vector<BatchQuery> RequestMix(const Graph& g) {
  std::vector<BatchQuery> mix;
  for (std::uint32_t k = 2; k <= 6; ++k) {
    for (std::uint32_t r : {1u, 5u, 10u}) {
      mix.push_back({k, std::min<std::uint32_t>(r, g.num_vertices())});
    }
  }
  return mix;
}

/// Client-side accounting for the socket load generators.
struct WireClientStats {
  LatencyHistogram latency_ns;
  std::uint64_t replies = 0;
  bool ok = true;
};

std::uint64_t NowMinusNs(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// One closed-loop client: keeps a window of kWindow requests in flight on
/// its own connection, measures send->reply latency per request, and
/// spot-checks every reply body against the serial reference.
void ClosedLoopClient(std::uint16_t port, std::uint64_t tenant,
                      std::uint32_t requests,
                      const std::vector<BatchQuery>& mix,
                      const std::vector<std::vector<TranscriptEntry>>& reference,
                      WireClientStats* out) {
  SocketClient client =
      SocketClient::Connect("127.0.0.1", port, /*recv_timeout_ms=*/60000);
  constexpr std::uint32_t kWindow = 4;
  std::deque<std::pair<std::size_t, std::chrono::steady_clock::time_point>>
      inflight;
  auto drain_one = [&] {
    ServerFrame frame;
    if (!client.ReadServerFrame(&frame)) {
      out->ok = false;
      inflight.clear();
      return;
    }
    const auto [mix_index, sent] = inflight.front();
    inflight.pop_front();
    out->latency_ns.Record(NowMinusNs(sent));
    ++out->replies;
    if (frame.type != kReplyFrame || frame.status != ServeStatus::kOk ||
        frame.entries.size() != reference[mix_index].size()) {
      out->ok = false;
      return;
    }
    for (std::size_t i = 0; i < frame.entries.size(); ++i) {
      if (frame.entries[i].vertex != reference[mix_index][i].vertex ||
          frame.entries[i].score != reference[mix_index][i].score) {
        out->ok = false;
      }
    }
  };
  for (std::uint32_t i = 0; i < requests && out->ok; ++i) {
    const std::size_t mix_index = (i + tenant) % mix.size();
    inflight.emplace_back(mix_index, std::chrono::steady_clock::now());
    client.SendQuery(tenant, mix[mix_index].k, mix[mix_index].r);
    if (inflight.size() >= kWindow) drain_one();
  }
  while (!inflight.empty()) drain_one();
}

/// One open-loop run at a fixed offered rate: a sender thread schedules
/// Poisson (exponential inter-arrival) send times and never waits for
/// replies; a reader thread timestamps each reply against its request's
/// *scheduled* send time, so server queueing delay is charged to latency
/// even when the sender falls behind the schedule itself.
void OpenLoopRun(std::uint16_t port, double offered_qps,
                 std::uint32_t requests, const std::vector<BatchQuery>& mix,
                 WireClientStats* out, double* wall_seconds) {
  SocketClient client =
      SocketClient::Connect("127.0.0.1", port, /*recv_timeout_ms=*/60000);
  std::mutex mutex;
  std::deque<std::chrono::steady_clock::time_point> scheduled;

  std::thread reader([&] {
    for (std::uint32_t got = 0; got < requests; ++got) {
      ServerFrame frame;
      if (!client.ReadServerFrame(&frame)) {
        out->ok = false;
        return;
      }
      std::chrono::steady_clock::time_point sched;
      {
        std::lock_guard<std::mutex> lock(mutex);
        sched = scheduled.front();  // replies arrive in submission order
        scheduled.pop_front();
      }
      out->latency_ns.Record(NowMinusNs(sched));
      ++out->replies;
      if (frame.type != kReplyFrame || frame.status != ServeStatus::kOk) {
        out->ok = false;
      }
    }
  });

  Rng rng(0xb0b0u + static_cast<std::uint64_t>(offered_qps));
  const auto start = std::chrono::steady_clock::now();
  auto next = start;
  for (std::uint32_t i = 0; i < requests; ++i) {
    const double gap_seconds =
        -std::log(1.0 - rng.UniformDouble()) / offered_qps;
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_seconds));
    std::this_thread::sleep_until(next);
    {
      std::lock_guard<std::mutex> lock(mutex);
      scheduled.push_back(next);
    }
    const BatchQuery& q = mix[i % mix.size()];
    client.SendQuery(/*tenant=*/i % 16, q.k, q.r);
  }
  reader.join();
  *wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

void SocketLoadSection(const GctIndex& gct,
                       const std::vector<BatchQuery>& mix,
                       const std::vector<TopRResult>& serial_reference,
                       const Flags& flags) {
  std::vector<std::vector<TranscriptEntry>> reference;
  reference.reserve(serial_reference.size());
  for (const TopRResult& result : serial_reference) {
    std::vector<TranscriptEntry> entries;
    entries.reserve(result.entries.size());
    for (const TopREntry& entry : result.entries) {
      entries.push_back(TranscriptEntry{entry.vertex, entry.score});
    }
    reference.push_back(std::move(entries));
  }

  ShardedServeOptions serve_options;
  serve_options.num_shards = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("socket-shards", 2)));
  serve_options.shard.max_queue_depth = 1 << 16;  // load gen, no admission
  ShardedServeLoop loop(gct, serve_options);
  SocketServer server(loop);  // port 0: kernel-assigned
  server.Start();
  const std::uint16_t port = server.port();

  const auto requests_per_client = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("socket-requests", 200)));
  std::cout << "\nsocket transport (epoll server, loopback, "
            << serve_options.num_shards << " shards)\n";

  std::cout << "\nclosed-loop load (window=4 per client, "
            << requests_per_client << " requests/client):\n";
  TablePrinter closed({"clients", "requests", "wall", "qps", "p50 us",
                       "p99 us", "p999 us", "identical"});
  for (std::uint32_t clients : {1u, 2u, 4u}) {
    std::vector<WireClientStats> stats(clients);
    WallTimer timer;
    std::vector<std::thread> threads;
    for (std::uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClosedLoopClient(port, c, requests_per_client, mix, reference,
                         &stats[c]);
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall = timer.Seconds();

    LatencyHistogram merged;
    bool identical = true;
    std::uint64_t replies = 0;
    for (const WireClientStats& s : stats) {
      merged.Merge(s.latency_ns);
      identical = identical && s.ok;
      replies += s.replies;
    }
    closed.Row(std::uint64_t{clients}, replies, HumanSeconds(wall),
               WithThousands(static_cast<std::uint64_t>(
                   static_cast<double>(replies) / std::max(wall, 1e-9))),
               FormatDouble(merged.ValueAtQuantile(0.5) / 1000.0, 1),
               FormatDouble(merged.ValueAtQuantile(0.99) / 1000.0, 1),
               FormatDouble(merged.ValueAtQuantile(0.999) / 1000.0, 1),
               identical ? "yes" : "NO");
  }
  closed.Print(std::cout);

  const auto open_requests = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("open-requests", 1000)));
  std::cout << "\nopen-loop load (Poisson arrivals, " << open_requests
            << " requests/rate, latency from scheduled arrival):\n";
  TablePrinter open({"offered qps", "achieved qps", "p50 us", "p99 us",
                     "p999 us", "max us", "ok"});
  for (const double rate : {1000.0, 4000.0}) {
    WireClientStats stats;
    double wall = 0;
    OpenLoopRun(port, rate, open_requests, mix, &stats, &wall);
    open.Row(WithThousands(static_cast<std::uint64_t>(rate)),
             WithThousands(static_cast<std::uint64_t>(
                 static_cast<double>(stats.replies) / std::max(wall, 1e-9))),
             FormatDouble(stats.latency_ns.ValueAtQuantile(0.5) / 1000.0, 1),
             FormatDouble(stats.latency_ns.ValueAtQuantile(0.99) / 1000.0, 1),
             FormatDouble(stats.latency_ns.ValueAtQuantile(0.999) / 1000.0, 1),
             FormatDouble(static_cast<double>(stats.latency_ns.max()) / 1000.0,
                          1),
             stats.ok ? "yes" : "NO");
  }
  open.Print(std::cout);
  std::cout << "Open-loop p99/p999 grow once the offered rate nears the "
               "closed-loop qps:\nrequests queue behind a saturated server "
               "and the schedule charges the wait\nto latency (coordinated "
               "omission made visible).\n";

  server.Shutdown();
  loop.Shutdown();
}

/// Admission hot-path microbench: the per-tenant depth bookkeeping every
/// Submit performs, over the flat pre-hashed TenantDepthTable vs the
/// std::unordered_map it replaced (which re-hashed the key and chased a
/// node pointer per operation). Synthetic submit/drain cycles over a
/// rotating tenant population.
void AdmissionMicrobench() {
  constexpr std::uint64_t kOps = 400000;
  constexpr std::uint64_t kTenants = 512;
  constexpr std::uint32_t kCap = 16;

  WallTimer flat_timer;
  TenantDepthTable table;
  std::uint64_t flat_admitted = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::uint64_t tenant = i % kTenants;
    const std::uint64_t hash = Hash64(tenant);  // the router pays this once
    if (table.TryIncrement(tenant, hash, kCap)) ++flat_admitted;
    if (i % 3 == 2) table.Decrement(tenant, hash);
  }
  // Drain so the timing covers the erase path too.
  for (std::uint64_t tenant = 0; tenant < kTenants; ++tenant) {
    const std::uint64_t hash = Hash64(tenant);
    while (table.Depth(tenant, hash) > 0) table.Decrement(tenant, hash);
  }
  const double flat_seconds = flat_timer.Seconds();

  WallTimer map_timer;
  std::unordered_map<std::uint64_t, std::uint32_t> map;
  std::uint64_t map_admitted = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::uint64_t tenant = i % kTenants;
    std::uint32_t& depth = map[tenant];  // hashes the key again, every op
    if (depth < kCap) {
      ++depth;
      ++map_admitted;
    }
    if (i % 3 == 2) {
      auto it = map.find(tenant);
      if (it->second <= 1) {
        map.erase(it);
      } else {
        --it->second;
      }
    }
  }
  // Mirror the flat table's per-op drain so both timings cover the same
  // operation sequence, erase path included.
  for (std::uint64_t tenant = 0; tenant < kTenants; ++tenant) {
    auto it = map.find(tenant);
    while (it != map.end() && it->second > 0) {
      if (it->second <= 1) {
        map.erase(it);
        it = map.find(tenant);
      } else {
        --it->second;
      }
    }
  }
  const double map_seconds = map_timer.Seconds();

  std::cout << "\nadmission-path microbench (" << WithThousands(kOps)
            << " submit ops, " << kTenants << " tenants, depth cap " << kCap
            << "):\n  TenantDepthTable (pre-hashed, flat): "
            << FormatDouble(flat_seconds * 1e9 / kOps, 1)
            << " ns/op\n  std::unordered_map (re-hash + node): "
            << FormatDouble(map_seconds * 1e9 / kOps, 1) << " ns/op\n"
            << "  admitted " << flat_admitted << " vs " << map_admitted
            << " (must match: " << (flat_admitted == map_admitted ? "yes" : "NO")
            << ")\n";
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto requests_per_client =
      static_cast<std::uint32_t>(flags.GetInt("requests", 150));
  const auto max_batch =
      static_cast<std::uint32_t>(flags.GetInt("max-batch", 64));
  bench::PrintHeader("Serving throughput",
                     "queries/sec vs client threads x shards over one shared "
                     "index",
                     scale);

  const std::string dataset = flags.GetString("dataset", "email-enron");
  const Graph g = MakeDataset(dataset, scale);
  std::cout << "dataset: " << dataset << " (|V|="
            << WithThousands(g.num_vertices())
            << ", |E|=" << WithThousands(g.num_edges())
            << "), requests/client=" << requests_per_client
            << ", max_batch=" << max_batch << "\n";

  const GctIndex gct = GctIndex::Build(g);
  const std::vector<BatchQuery> mix = RequestMix(g);

  // Serial reference for correctness spot-checks.
  std::vector<TopRResult> reference;
  {
    QuerySession session;
    for (const BatchQuery& q : mix) {
      reference.push_back(gct.TopR(q.r, q.k, session));
    }
  }

  TablePrinter table({"shards", "clients", "requests", "wall", "qps",
                      "batches", "mean batch", "max batch", "identical"});
  std::vector<std::string> distributions;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    for (std::uint32_t clients : {1u, 2u, 4u, 8u}) {
      ShardedServeOptions options;
      options.num_shards = shards;
      options.shard.max_batch = max_batch;
      options.shard.max_queue_depth = requests_per_client + 1;  // no rejects
      ShardedServeLoop loop(gct, options);
      loop.Start();

      std::vector<char> client_ok(clients, 1);
      WallTimer timer;
      std::vector<std::thread> threads;
      for (std::uint32_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          // Pipelined submission with a bounded in-flight window, the shape
          // of a real client: coalescing opportunities come from many
          // *clients*, not from one client dumping its whole stream.
          constexpr std::uint32_t kWindow = 4;
          std::vector<std::pair<std::size_t, Future<ServeReply>>> window;
          auto drain_one = [&] {
            auto [mix_index, future] = std::move(window.front());
            window.erase(window.begin());
            ServeReply reply = future.Get();
            if (reply.status != ServeStatus::kOk ||
                !SameEntries(reply.result, reference[mix_index])) {
              client_ok[c] = 0;
            }
          };
          for (std::uint32_t i = 0; i < requests_per_client; ++i) {
            const std::size_t mix_index = (i + c) % mix.size();
            const BatchQuery& q = mix[mix_index];
            window.emplace_back(mix_index,
                                loop.Submit(ServeRequest{c, q.k, q.r}));
            if (window.size() >= kWindow) drain_one();
          }
          while (!window.empty()) drain_one();
        });
      }
      for (std::thread& t : threads) t.join();
      const double wall = timer.Seconds();
      loop.Shutdown();

      const ServeStats stats = loop.stats();
      bool identical = true;
      for (char ok : client_ok) identical = identical && ok;
      std::uint64_t max_size = 0;
      std::uint64_t weighted = 0;
      for (std::size_t s = 1; s < stats.batch_size_count.size(); ++s) {
        if (stats.batch_size_count[s] == 0) continue;
        max_size = s;
        weighted += s * stats.batch_size_count[s];
      }
      // Per-shard coalescing distributions: sharding splits the in-flight
      // pool, so shard-local batches are smaller than the 1-shard batches
      // at the same client count — the price paid for parallel dispatch.
      for (std::uint32_t s = 0; s < loop.num_shards(); ++s) {
        const ServeStats shard = loop.shard_stats(s);
        std::string line = "shards=" + std::to_string(shards) +
                           " clients=" + std::to_string(clients) + " shard " +
                           std::to_string(s) + ":";
        for (std::size_t b = 1; b < shard.batch_size_count.size(); ++b) {
          if (shard.batch_size_count[b] == 0) continue;
          line += " " + std::to_string(b) + "x" +
                  std::to_string(shard.batch_size_count[b]);
        }
        distributions.push_back(std::move(line));
      }
      const std::uint64_t total =
          std::uint64_t{clients} * requests_per_client;
      table.Row(std::uint64_t{shards}, std::uint64_t{clients}, total,
                HumanSeconds(wall),
                WithThousands(static_cast<std::uint64_t>(
                    total / std::max(wall, 1e-9))),
                stats.batches,
                FormatDouble(static_cast<double>(weighted) /
                                 std::max<std::uint64_t>(1, stats.batches),
                             2),
                max_size, identical ? "yes" : "NO");
    }
  }
  table.Print(std::cout);

  std::cout << "\nper-shard coalescing batch-size distribution (size x "
               "count):\n";
  for (const std::string& line : distributions) {
    std::cout << "  " << line << "\n";
  }
  std::cout << "\nExpected shape: at 1 client batches stay small (the window "
               "bounds in-flight\nrequests); with more clients the consumers "
               "find multi-request batches and the\nmean batch size grows. "
               "Adding shards parallelizes dispatch but splits the\n"
               "coalescing pool: per-shard batches shrink at a fixed client "
               "count, so shards\npay off when consumers — not batching — are "
               "the bottleneck (many tiny\nqueries, multi-core servers). "
               "'identical' must read yes everywhere (replies\nare "
               "bit-identical to serial TopR at any shard count).\n";

  SocketLoadSection(gct, mix, reference, flags);

  AdmissionMicrobench();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
