// Serving-layer throughput: queries/sec through ServeLoop as the number of
// client threads grows, plus the coalescing batch-size distribution.
//
// Each client thread submits a seeded stream of (k, r) requests through the
// MPSC queue and blocks on its futures; the single server thread coalesces
// whatever is in flight into SearchBatch calls over one shared immutable
// GCT index. Under concurrent load the in-flight window grows, batches
// form, and the per-request cost drops (the batch engine amortizes the
// per-vertex slice sweep across tenants) — the distribution line makes the
// coalescing visible. Every reply is spot-checked against serial TopR.
#include <cstdint>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/gct_index.h"
#include "core/query_session.h"
#include "server/serve_loop.h"

namespace {

using namespace tsd;

bool SameEntries(const TopRResult& a, const TopRResult& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].vertex != b.entries[i].vertex ||
        a.entries[i].score != b.entries[i].score ||
        a.entries[i].contexts != b.entries[i].contexts) {
      return false;
    }
  }
  return true;
}

/// The request mix every client cycles through (deterministic, so each
/// reply can be checked against a precomputed serial reference).
std::vector<BatchQuery> RequestMix(const Graph& g) {
  std::vector<BatchQuery> mix;
  for (std::uint32_t k = 2; k <= 6; ++k) {
    for (std::uint32_t r : {1u, 5u, 10u}) {
      mix.push_back({k, std::min<std::uint32_t>(r, g.num_vertices())});
    }
  }
  return mix;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto requests_per_client =
      static_cast<std::uint32_t>(flags.GetInt("requests", 150));
  const auto max_batch =
      static_cast<std::uint32_t>(flags.GetInt("max-batch", 64));
  bench::PrintHeader("Serving throughput",
                     "queries/sec vs client threads over one shared index",
                     scale);

  const std::string dataset = flags.GetString("dataset", "email-enron");
  const Graph g = MakeDataset(dataset, scale);
  std::cout << "dataset: " << dataset << " (|V|="
            << WithThousands(g.num_vertices())
            << ", |E|=" << WithThousands(g.num_edges())
            << "), requests/client=" << requests_per_client
            << ", max_batch=" << max_batch << "\n";

  const GctIndex gct = GctIndex::Build(g);
  const std::vector<BatchQuery> mix = RequestMix(g);

  // Serial reference for correctness spot-checks.
  std::vector<TopRResult> reference;
  {
    QuerySession session;
    for (const BatchQuery& q : mix) {
      reference.push_back(gct.TopR(q.r, q.k, session));
    }
  }

  TablePrinter table({"clients", "requests", "wall", "qps", "batches",
                      "mean batch", "max batch", "identical"});
  std::vector<std::string> distributions;
  for (std::uint32_t clients : {1u, 2u, 4u, 8u}) {
    ServeOptions options;
    options.max_batch = max_batch;
    options.max_queue_depth = requests_per_client + 1;  // no depth rejects
    ServeLoop loop(gct, options);
    loop.Start();

    std::vector<char> client_ok(clients, 1);
    WallTimer timer;
    std::vector<std::thread> threads;
    for (std::uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        // Pipelined submission with a bounded in-flight window, the shape
        // of a real client: coalescing opportunities come from many
        // *clients*, not from one client dumping its whole stream.
        constexpr std::uint32_t kWindow = 4;
        std::vector<std::pair<std::size_t, Future<ServeReply>>> window;
        auto drain_one = [&] {
          auto [mix_index, future] = std::move(window.front());
          window.erase(window.begin());
          ServeReply reply = future.Get();
          if (reply.status != ServeStatus::kOk ||
              !SameEntries(reply.result, reference[mix_index])) {
            client_ok[c] = 0;
          }
        };
        for (std::uint32_t i = 0; i < requests_per_client; ++i) {
          const std::size_t mix_index = (i + c) % mix.size();
          const BatchQuery& q = mix[mix_index];
          window.emplace_back(mix_index,
                              loop.Submit(ServeRequest{c, q.k, q.r}));
          if (window.size() >= kWindow) drain_one();
        }
        while (!window.empty()) drain_one();
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall = timer.Seconds();
    loop.Shutdown();

    const ServeStats stats = loop.stats();
    bool identical = true;
    for (char ok : client_ok) identical = identical && ok;
    std::uint64_t max_size = 0;
    std::uint64_t weighted = 0;
    std::string distribution;
    for (std::size_t s = 1; s < stats.batch_size_count.size(); ++s) {
      if (stats.batch_size_count[s] == 0) continue;
      max_size = s;
      weighted += s * stats.batch_size_count[s];
      distribution += " " + std::to_string(s) + "x" +
                      std::to_string(stats.batch_size_count[s]);
    }
    distributions.push_back("clients=" + std::to_string(clients) + ":" +
                            distribution);
    const std::uint64_t total = std::uint64_t{clients} * requests_per_client;
    table.Row(std::uint64_t{clients}, total, HumanSeconds(wall),
              WithThousands(static_cast<std::uint64_t>(
                  total / std::max(wall, 1e-9))),
              stats.batches,
              FormatDouble(static_cast<double>(weighted) /
                               std::max<std::uint64_t>(1, stats.batches),
                           2),
              max_size, identical ? "yes" : "NO");
  }
  table.Print(std::cout);

  std::cout << "\ncoalescing batch-size distribution (size x count):\n";
  for (const std::string& line : distributions) {
    std::cout << "  " << line << "\n";
  }
  std::cout << "\nExpected shape: at 1 client batches stay small (the window "
               "bounds in-flight\nrequests); with more clients the server "
               "finds multi-request batches and the\nmean batch size grows — "
               "amortization the single-client path cannot reach.\n'identical'"
               " must read yes everywhere (replies are bit-identical to "
               "serial TopR).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
