// Serving-layer throughput: queries/sec through the (sharded) serve loop as
// client threads and shard counts grow, plus per-shard coalescing
// batch-size distributions and a microbench of the admission-path tenant
// depth table.
//
// Each client thread submits a seeded stream of (k, r) requests through its
// tenant's shard queue and blocks on its futures; every shard's consumer
// thread coalesces whatever is in flight into SearchBatch calls over one
// shared immutable GCT index. Under concurrent load the in-flight window
// grows, batches form, and the per-request cost drops (the batch engine
// amortizes the per-vertex slice sweep across tenants). Sharding adds
// inter-batch parallelism on top: S consumers dispatch S batches
// concurrently, at the price of splitting the coalescing pool S ways — the
// per-shard distribution lines make that trade visible. Every reply is
// spot-checked against serial TopR.
#include <cstdint>
#include <iostream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/gct_index.h"
#include "core/query_session.h"
#include "server/sharded_serve.h"
#include "server/tenant_table.h"

namespace {

using namespace tsd;

bool SameEntries(const TopRResult& a, const TopRResult& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].vertex != b.entries[i].vertex ||
        a.entries[i].score != b.entries[i].score ||
        a.entries[i].contexts != b.entries[i].contexts) {
      return false;
    }
  }
  return true;
}

/// The request mix every client cycles through (deterministic, so each
/// reply can be checked against a precomputed serial reference).
std::vector<BatchQuery> RequestMix(const Graph& g) {
  std::vector<BatchQuery> mix;
  for (std::uint32_t k = 2; k <= 6; ++k) {
    for (std::uint32_t r : {1u, 5u, 10u}) {
      mix.push_back({k, std::min<std::uint32_t>(r, g.num_vertices())});
    }
  }
  return mix;
}

/// Admission hot-path microbench: the per-tenant depth bookkeeping every
/// Submit performs, over the flat pre-hashed TenantDepthTable vs the
/// std::unordered_map it replaced (which re-hashed the key and chased a
/// node pointer per operation). Synthetic submit/drain cycles over a
/// rotating tenant population.
void AdmissionMicrobench() {
  constexpr std::uint64_t kOps = 400000;
  constexpr std::uint64_t kTenants = 512;
  constexpr std::uint32_t kCap = 16;

  WallTimer flat_timer;
  TenantDepthTable table;
  std::uint64_t flat_admitted = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::uint64_t tenant = i % kTenants;
    const std::uint64_t hash = Hash64(tenant);  // the router pays this once
    if (table.TryIncrement(tenant, hash, kCap)) ++flat_admitted;
    if (i % 3 == 2) table.Decrement(tenant, hash);
  }
  // Drain so the timing covers the erase path too.
  for (std::uint64_t tenant = 0; tenant < kTenants; ++tenant) {
    const std::uint64_t hash = Hash64(tenant);
    while (table.Depth(tenant, hash) > 0) table.Decrement(tenant, hash);
  }
  const double flat_seconds = flat_timer.Seconds();

  WallTimer map_timer;
  std::unordered_map<std::uint64_t, std::uint32_t> map;
  std::uint64_t map_admitted = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::uint64_t tenant = i % kTenants;
    std::uint32_t& depth = map[tenant];  // hashes the key again, every op
    if (depth < kCap) {
      ++depth;
      ++map_admitted;
    }
    if (i % 3 == 2) {
      auto it = map.find(tenant);
      if (it->second <= 1) {
        map.erase(it);
      } else {
        --it->second;
      }
    }
  }
  // Mirror the flat table's per-op drain so both timings cover the same
  // operation sequence, erase path included.
  for (std::uint64_t tenant = 0; tenant < kTenants; ++tenant) {
    auto it = map.find(tenant);
    while (it != map.end() && it->second > 0) {
      if (it->second <= 1) {
        map.erase(it);
        it = map.find(tenant);
      } else {
        --it->second;
      }
    }
  }
  const double map_seconds = map_timer.Seconds();

  std::cout << "\nadmission-path microbench (" << WithThousands(kOps)
            << " submit ops, " << kTenants << " tenants, depth cap " << kCap
            << "):\n  TenantDepthTable (pre-hashed, flat): "
            << FormatDouble(flat_seconds * 1e9 / kOps, 1)
            << " ns/op\n  std::unordered_map (re-hash + node): "
            << FormatDouble(map_seconds * 1e9 / kOps, 1) << " ns/op\n"
            << "  admitted " << flat_admitted << " vs " << map_admitted
            << " (must match: " << (flat_admitted == map_admitted ? "yes" : "NO")
            << ")\n";
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto requests_per_client =
      static_cast<std::uint32_t>(flags.GetInt("requests", 150));
  const auto max_batch =
      static_cast<std::uint32_t>(flags.GetInt("max-batch", 64));
  bench::PrintHeader("Serving throughput",
                     "queries/sec vs client threads x shards over one shared "
                     "index",
                     scale);

  const std::string dataset = flags.GetString("dataset", "email-enron");
  const Graph g = MakeDataset(dataset, scale);
  std::cout << "dataset: " << dataset << " (|V|="
            << WithThousands(g.num_vertices())
            << ", |E|=" << WithThousands(g.num_edges())
            << "), requests/client=" << requests_per_client
            << ", max_batch=" << max_batch << "\n";

  const GctIndex gct = GctIndex::Build(g);
  const std::vector<BatchQuery> mix = RequestMix(g);

  // Serial reference for correctness spot-checks.
  std::vector<TopRResult> reference;
  {
    QuerySession session;
    for (const BatchQuery& q : mix) {
      reference.push_back(gct.TopR(q.r, q.k, session));
    }
  }

  TablePrinter table({"shards", "clients", "requests", "wall", "qps",
                      "batches", "mean batch", "max batch", "identical"});
  std::vector<std::string> distributions;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    for (std::uint32_t clients : {1u, 2u, 4u, 8u}) {
      ShardedServeOptions options;
      options.num_shards = shards;
      options.shard.max_batch = max_batch;
      options.shard.max_queue_depth = requests_per_client + 1;  // no rejects
      ShardedServeLoop loop(gct, options);
      loop.Start();

      std::vector<char> client_ok(clients, 1);
      WallTimer timer;
      std::vector<std::thread> threads;
      for (std::uint32_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          // Pipelined submission with a bounded in-flight window, the shape
          // of a real client: coalescing opportunities come from many
          // *clients*, not from one client dumping its whole stream.
          constexpr std::uint32_t kWindow = 4;
          std::vector<std::pair<std::size_t, Future<ServeReply>>> window;
          auto drain_one = [&] {
            auto [mix_index, future] = std::move(window.front());
            window.erase(window.begin());
            ServeReply reply = future.Get();
            if (reply.status != ServeStatus::kOk ||
                !SameEntries(reply.result, reference[mix_index])) {
              client_ok[c] = 0;
            }
          };
          for (std::uint32_t i = 0; i < requests_per_client; ++i) {
            const std::size_t mix_index = (i + c) % mix.size();
            const BatchQuery& q = mix[mix_index];
            window.emplace_back(mix_index,
                                loop.Submit(ServeRequest{c, q.k, q.r}));
            if (window.size() >= kWindow) drain_one();
          }
          while (!window.empty()) drain_one();
        });
      }
      for (std::thread& t : threads) t.join();
      const double wall = timer.Seconds();
      loop.Shutdown();

      const ServeStats stats = loop.stats();
      bool identical = true;
      for (char ok : client_ok) identical = identical && ok;
      std::uint64_t max_size = 0;
      std::uint64_t weighted = 0;
      for (std::size_t s = 1; s < stats.batch_size_count.size(); ++s) {
        if (stats.batch_size_count[s] == 0) continue;
        max_size = s;
        weighted += s * stats.batch_size_count[s];
      }
      // Per-shard coalescing distributions: sharding splits the in-flight
      // pool, so shard-local batches are smaller than the 1-shard batches
      // at the same client count — the price paid for parallel dispatch.
      for (std::uint32_t s = 0; s < loop.num_shards(); ++s) {
        const ServeStats shard = loop.shard_stats(s);
        std::string line = "shards=" + std::to_string(shards) +
                           " clients=" + std::to_string(clients) + " shard " +
                           std::to_string(s) + ":";
        for (std::size_t b = 1; b < shard.batch_size_count.size(); ++b) {
          if (shard.batch_size_count[b] == 0) continue;
          line += " " + std::to_string(b) + "x" +
                  std::to_string(shard.batch_size_count[b]);
        }
        distributions.push_back(std::move(line));
      }
      const std::uint64_t total =
          std::uint64_t{clients} * requests_per_client;
      table.Row(std::uint64_t{shards}, std::uint64_t{clients}, total,
                HumanSeconds(wall),
                WithThousands(static_cast<std::uint64_t>(
                    total / std::max(wall, 1e-9))),
                stats.batches,
                FormatDouble(static_cast<double>(weighted) /
                                 std::max<std::uint64_t>(1, stats.batches),
                             2),
                max_size, identical ? "yes" : "NO");
    }
  }
  table.Print(std::cout);

  std::cout << "\nper-shard coalescing batch-size distribution (size x "
               "count):\n";
  for (const std::string& line : distributions) {
    std::cout << "  " << line << "\n";
  }
  std::cout << "\nExpected shape: at 1 client batches stay small (the window "
               "bounds in-flight\nrequests); with more clients the consumers "
               "find multi-request batches and the\nmean batch size grows. "
               "Adding shards parallelizes dispatch but splits the\n"
               "coalescing pool: per-shard batches shrink at a fixed client "
               "count, so shards\npay off when consumers — not batching — are "
               "the bottleneck (many tiny\nqueries, multi-core servers). "
               "'identical' must read yes everywhere (replies\nare "
               "bit-identical to serial TopR at any shard count).\n";

  AdmissionMicrobench();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
