// Figure 3: the number of edges at each edge-trussness value on four
// real-world graphs (Wiki-Vote, Email-Enron, Gowalla, Epinions), showing the
// heavy-tailed trussness distribution that makes graph sparsification
// effective. Also reports the paper's companion statistic: the fraction of
// edges and isolated vertices removed by sparsification at k = 5.
#include <cstdint>
#include <iostream>

#include "bench_common.h"
#include "common/flags.h"
#include "truss/k_truss.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const std::uint32_t sparsify_k =
      static_cast<std::uint32_t>(flags.GetInt("k", 5));
  // --threads=N parallelizes each dataset's global truss decomposition
  // (histograms are identical at any thread count).
  const ParallelConfig config = ToParallelConfig(QueryOptionsFromFlags(flags));
  bench::PrintHeader("Figure 3", "edge trussness distribution", scale);

  const std::vector<std::string> datasets = {"wiki-vote", "email-enron",
                                             "gowalla", "epinions"};

  TablePrinter table({"trussness", "Wiki-Vote", "Email-Enron", "Gowalla",
                      "Epinions"});
  std::vector<std::vector<std::uint64_t>> histograms;
  std::uint32_t max_t = 0;
  double removed_edges_fraction = 0;
  double removed_vertices_fraction = 0;
  for (const auto& name : datasets) {
    const Graph g = MakeDataset(name, scale);
    TrussDecomposition td(g, config);
    histograms.push_back(td.TrussnessHistogram());
    max_t = std::max(max_t, td.max_trussness());

    // Sparsification statistics at k (Property 1 removes tau <= k).
    std::uint64_t removed_edges = 0;
    for (std::uint32_t t = 0; t <= sparsify_k && t < histograms.back().size();
         ++t) {
      removed_edges += histograms.back()[t];
    }
    removed_edges_fraction +=
        static_cast<double>(removed_edges) / g.num_edges();
    const Graph reduced = KTrussSubgraph(g, td.edge_trussness(), sparsify_k + 1);
    std::uint64_t isolated = 0;
    for (VertexId v = 0; v < reduced.num_vertices(); ++v) {
      isolated += reduced.degree(v) == 0 && g.degree(v) > 0;
    }
    removed_vertices_fraction +=
        static_cast<double>(isolated) / g.num_vertices();
  }

  for (std::uint32_t t = 2; t <= max_t; ++t) {
    std::vector<std::string> row = {std::to_string(t)};
    for (const auto& histogram : histograms) {
      row.push_back(t < histogram.size() ? std::to_string(histogram[t]) : "0");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nGraph sparsification at k=" << sparsify_k
            << " (paper: ~45% edges, ~6.8% isolated nodes on these four):\n"
            << "  avg removed edges:          "
            << FormatDouble(100.0 * removed_edges_fraction / datasets.size(), 1)
            << "%\n"
            << "  avg isolated nodes removed: "
            << FormatDouble(
                   100.0 * removed_vertices_fraction / datasets.size(), 1)
            << "%\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
