// Figure 13 (Exp-7): correlation between social contagion and truss-based
// structural diversity. Vertices are grouped into four score intervals at
// k = 4; each group's activation rate under independent-cascade propagation
// from 50 influence-maximization seeds (p = 0.01) is reported. The paper's
// claim: higher diversity groups activate more often.
#include <cstdint>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "core/gct_index.h"
#include "influence/contagion_experiments.h"
#include "influence/influence_max.h"

namespace {

using namespace tsd;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string scale = flags.BenchScale();
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 4));
  const auto runs = static_cast<std::uint32_t>(flags.GetInt("runs", 2000));
  const auto num_seeds = static_cast<std::uint32_t>(flags.GetInt("seeds", 50));
  const double p = flags.GetDouble("p", 0.01);
  bench::PrintHeader("Figure 13",
                     "activation rate by truss-diversity score group", scale);
  std::cout << "k=" << k << " seeds=" << num_seeds << " p=" << p
            << " monte-carlo runs=" << runs
            << " (paper uses 10,000 runs; use --runs to match)\n";

  for (const auto& name : PlotDatasetNames()) {
    const Graph g = MakeDataset(name, scale);
    std::cout << "\n--- " << name << " ---\n";

    GctIndex gct = GctIndex::Build(g);
    std::vector<std::uint32_t> scores(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      scores[v] = gct.Score(v, k);
    }

    RisOptions ris;
    ris.probability = p;
    ris.num_samples = 20000;
    ris.seed = 42;
    const auto seeds = SelectSeedsRis(g, num_seeds, ris);

    IndependentCascade cascade(g, p);
    const auto groups =
        ActivationRateByScoreGroup(cascade, scores, 4, seeds, runs, 7);

    TablePrinter table({"score interval", "vertices", "activated rate"});
    for (const auto& group : groups) {
      std::ostringstream interval;
      interval << "[" << group.score_low << "," << group.score_high << "]";
      table.Row(interval.str(), WithThousands(group.num_vertices),
                FormatDouble(group.activation_rate, 4));
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): activation rate increases from the "
               "lowest to the\nhighest score interval.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
